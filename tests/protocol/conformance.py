"""Sim/wire conformance harness.

One scripted trace -- a timed sequence of protocol inputs for a single
session -- is replayed twice:

* through the **sim driver** (:class:`repro.core.sender.SenderSession` /
  :class:`repro.core.receiver.ReceiverSession` on a real
  :class:`~repro.sim.engine.Simulator` with a stub host), and
* through the **net driver** (:class:`repro.net.driver.NetSenderDriver` /
  :class:`repro.net.driver.NetReceiverDriver` on a
  :class:`~repro.net.scheduler.ManualScheduler`), with every outgoing
  payload round-tripped through the wire codec on the way out.

Both replays reduce to the same normalized decision list -- ``(time, kind,
destination, payload)`` for every transmitted packet plus a completion
marker -- and the suite asserts the lists are **identical**.  Any drift
between the two transports' view of the protocol (timer arithmetic, pacing
order, pull bookkeeping, wire codec lossiness) shows up as a diff.

Both sides are driven the same way: advance the clock exactly to the
event's timestamp (``Simulator.run(until=t)`` /
``ManualScheduler.run_until(t)`` -- both land the clock on ``t`` and break
same-instant ties by scheduling order), then invoke the handler directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Optional

from repro.core.agent import PolyraptorAgent
from repro.core.config import PolyraptorConfig
from repro.core.packets import DoneAckPayload, DonePayload, PullPayload, SymbolPayload
from repro.core.receiver import ReceiverSession
from repro.core.sender import SenderSession
from repro.net.driver import NetReceiverDriver, NetSenderDriver
from repro.net.scheduler import ManualScheduler
from repro.net.wire import decode_frame, encode_frame
from repro.protocol.actions import SendPacket
from repro.protocol.receiver import ReceiverCore
from repro.protocol.sender import SenderCore
from repro.sim.engine import Simulator

#: Directory holding the scripted trace corpus.
TRACES_DIR = Path(__file__).parent / "traces"

#: Both replays assume the same link rate, so pull-pacing intervals and
#: TFRC ceilings match to the bit.
LINK_RATE_BPS = 1e9

#: The node id of the session's host on both transports.
LOCAL_HOST_ID = 1

Decision = tuple


class StubHost:
    """The minimal host surface the sim-side agent needs.

    ``send`` records the packet as a normalized decision instead of
    entering a NIC queue: conformance compares what the protocol *decided*
    to transmit, not how a particular fabric treats it afterwards.
    """

    def __init__(self, sim: Simulator, sink: list) -> None:
        self._sim = sim
        self._sink = sink
        self.node_id = LOCAL_HOST_ID
        self.link_rate_bps = LINK_RATE_BPS
        self.name = "conformance-host"

    def register_protocol(self, protocol: str, agent: Any) -> None:
        pass

    def send(self, packet: Any) -> bool:
        dest: Any = packet.dst
        if packet.multicast_group is not None:
            dest = ("group", packet.multicast_group)
        self._sink.append(
            ("packet", repr(self._sim.now), packet.kind.value, dest, repr(packet.payload))
        )
        return True


def load_trace(path: Path) -> dict:
    """Load one trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def trace_paths() -> list[Path]:
    """All trace files in the corpus, sorted by name."""
    return sorted(TRACES_DIR.glob("*.json"))


def _config(trace: dict) -> PolyraptorConfig:
    return PolyraptorConfig(**trace.get("config", {}))


def _event_payload(trace: dict, event: dict):
    """Build the protocol payload a trace event injects."""
    session_id = trace["session"]["session_id"]
    kind = event["type"]
    if kind == "symbol":
        return SymbolPayload(
            session_id=session_id,
            sender_host=event["sender_host"],
            block_number=event["block_number"],
            esi=event["esi"],
            block_symbol_count=event["block_symbol_count"],
            num_blocks=event["num_blocks"],
            object_bytes=trace["session"]["object_bytes"],
            data=None,
            sequence=event["sequence"],
        )
    if kind == "pull":
        return PullPayload(
            session_id=session_id,
            receiver_host=event["receiver_host"],
            pull_sequence=event["pull_sequence"],
            block_hint=event.get("block_hint"),
            congestion_echo=event.get("congestion_echo", 0),
            loss_estimate=event.get("loss_estimate", 0.0),
        )
    if kind == "done":
        return DonePayload(session_id=session_id, receiver_host=event["receiver_host"])
    if kind == "done_ack":
        return DoneAckPayload(session_id=session_id, sender_host=event["sender_host"])
    return None


def _inject(trace: dict, event: dict, session: Any) -> None:
    """Apply one trace event to a driver (sim or net -- same surface)."""
    kind = event["type"]
    payload = _event_payload(trace, event)
    if kind == "start":
        session.start()
    elif kind == "start_fetch":
        session.start_fetch()
    elif kind == "symbol":
        session.on_symbol(
            payload,
            trimmed=event.get("trimmed", False),
            ce=event.get("ce", False),
            multicast=event.get("multicast", False),
            sent_at=event.get("sent_at", 0.0),
        )
    elif kind == "pull":
        session.on_pull(payload)
    elif kind == "done":
        session.on_done(payload)
    elif kind == "done_ack":
        session.on_done_ack(payload)
    else:
        raise ValueError(f"unknown trace event type {kind!r}")


def run_sim_trace(trace: dict) -> list[Decision]:
    """Replay a trace through the simulator driver; return its decisions."""
    sim = Simulator()
    sink: list[Decision] = []
    host = StubHost(sim, sink)
    agent = PolyraptorAgent(sim, host, _config(trace))
    session = _build_sim_session(trace, agent, sink)
    for event in trace["events"]:
        sim.run(until=event["t"])
        _inject(trace, event, session)
    sim.run(until=trace["horizon"])
    return sink


def _build_sim_session(trace: dict, agent: PolyraptorAgent, sink: list):
    spec = trace["session"]
    on_complete = lambda t: sink.append(("complete", repr(t)))  # noqa: E731
    if trace["kind"] == "receiver":
        return ReceiverSession(
            agent=agent,
            session_id=spec["session_id"],
            object_bytes=spec["object_bytes"],
            expected_senders=spec.get("expected_senders"),
            on_complete=on_complete,
        )
    return SenderSession(
        agent=agent,
        session_id=spec["session_id"],
        object_bytes=spec["object_bytes"],
        receiver_host_ids=spec["receiver_host_ids"],
        multicast_group=spec.get("multicast_group"),
        sender_index=spec.get("sender_index", 0),
        num_senders=spec.get("num_senders", 1),
        on_all_receivers_done=on_complete,
    )


def run_net_trace(trace: dict) -> list[Decision]:
    """Replay a trace through the net driver; return its decisions.

    Every outgoing payload is round-tripped through
    :func:`~repro.net.wire.encode_frame` / ``decode_frame`` first, so a
    lossy codec (a field dropped, truncated or re-quantised on the wire)
    breaks conformance even when the in-memory decisions agree.
    """
    scheduler = ManualScheduler()
    sink: list[Decision] = []

    def transmit(action: SendPacket) -> None:
        payload = decode_frame(encode_frame(action.payload)).payload
        dest: Any = action.dest
        if action.multicast_group is not None:
            dest = ("group", action.multicast_group)
        sink.append(
            ("packet", repr(scheduler.time()), action.kind, dest, repr(payload))
        )

    driver = _build_net_driver(trace, scheduler, transmit, sink)
    for event in trace["events"]:
        scheduler.run_until(event["t"])
        _inject(trace, event, driver)
    scheduler.run_until(trace["horizon"])
    return sink


def _build_net_driver(
    trace: dict,
    scheduler: ManualScheduler,
    transmit: Callable[[SendPacket], None],
    sink: list,
):
    spec = trace["session"]
    config = _config(trace)
    on_complete = lambda t: sink.append(("complete", repr(t)))  # noqa: E731
    if trace["kind"] == "receiver":
        core = ReceiverCore(
            config=config,
            session_id=spec["session_id"],
            object_bytes=spec["object_bytes"],
            local_host=LOCAL_HOST_ID,
            expected_senders=spec.get("expected_senders"),
            now=scheduler.time(),
        )
        return NetReceiverDriver(
            core, scheduler, transmit,
            on_complete=on_complete, max_rate_bps=LINK_RATE_BPS,
        )
    core = SenderCore(
        config=config,
        session_id=spec["session_id"],
        object_bytes=spec["object_bytes"],
        receiver_host_ids=spec["receiver_host_ids"],
        local_host=LOCAL_HOST_ID,
        link_rate_bps=LINK_RATE_BPS,
        multicast_group=spec.get("multicast_group"),
        sender_index=spec.get("sender_index", 0),
        num_senders=spec.get("num_senders", 1),
    )
    return NetSenderDriver(core, scheduler, transmit, on_complete=on_complete)
