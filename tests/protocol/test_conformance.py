"""Sim/wire conformance: identical traces must yield identical decisions."""

import pytest

from tests.protocol import conformance


def _traces():
    paths = conformance.trace_paths()
    assert paths, "conformance trace corpus is empty; run scripts/regenerate_traces.py"
    return paths


@pytest.mark.parametrize("path", _traces(), ids=lambda p: p.stem)
def test_sim_and_net_drivers_decide_identically(path):
    trace = conformance.load_trace(path)
    sim_decisions = conformance.run_sim_trace(trace)
    net_decisions = conformance.run_net_trace(trace)
    assert sim_decisions == net_decisions


@pytest.mark.parametrize("path", _traces(), ids=lambda p: p.stem)
def test_traces_exercise_the_protocol(path):
    """Guard the corpus itself: every trace transmits and (where scripted)
    completes -- a trace that goes quiet would make conformance vacuous."""
    trace = conformance.load_trace(path)
    decisions = conformance.run_sim_trace(trace)
    assert any(d[0] == "packet" for d in decisions)
    completed = any(d[0] == "complete" for d in decisions)
    assert completed == trace["expect_complete"]


def test_trace_times_are_monotonic():
    for path in _traces():
        trace = conformance.load_trace(path)
        times = [event["t"] for event in trace["events"]]
        assert times == sorted(times), f"{path.stem} events out of order"
        assert trace["horizon"] >= times[-1]


def test_wire_round_trip_is_part_of_the_net_path():
    """The net replay must round-trip payloads through the wire codec --
    sabotaging the codec has to break conformance, not pass silently."""
    trace = conformance.load_trace(conformance.trace_paths()[0])
    from repro.net import wire

    original = wire.encode_frame
    try:
        wire.encode_frame = lambda payload, sent_at=0.0: (_ for _ in ()).throw(
            wire.WireError("sabotaged")
        )
        # conformance.py imported the names at module load; patch there too.
        conformance.encode_frame, saved = wire.encode_frame, conformance.encode_frame
        try:
            with pytest.raises(wire.WireError):
                conformance.run_net_trace(trace)
        finally:
            conformance.encode_frame = saved
    finally:
        wire.encode_frame = original
