"""Integration tests: the runner and (small versions of) every figure driver.

These use deliberately tiny workloads so the whole file runs in well under a
minute; the benchmark suite exercises the full scaled-down figures.
"""

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.figure1a import run_figure1a, series_label as label_1a
from repro.experiments.figure1b import run_figure1b, series_label as label_1b
from repro.experiments.figure1c import run_figure1c, series_label as label_1c
from repro.experiments.runner import run_transfers, run_unicast_demo
from repro.network.topology import FatTreeTopology
from repro.utils.units import KILOBYTE
from repro.workloads.spec import TransferKind, TransferSpec


TINY = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=6,
    object_bytes=96 * KILOBYTE,
    background_fraction=0.2,
    max_sim_time_s=30.0,
)


class TestRunner:
    def test_unicast_demo_polyraptor(self):
        result = run_unicast_demo(Protocol.POLYRAPTOR, object_bytes=200_000)
        assert result.completion_fraction == 1.0
        assert result.goodputs_gbps()[0] > 0.5

    def test_unicast_demo_tcp(self):
        result = run_unicast_demo(Protocol.TCP, object_bytes=200_000)
        assert result.completion_fraction == 1.0
        assert result.goodputs_gbps()[0] > 0.5

    def test_same_workload_offered_to_both_protocols(self):
        topology = FatTreeTopology(4)
        transfers = [
            TransferSpec(transfer_id=i, kind=TransferKind.UNICAST, client=f"h{i}",
                         peers=(f"h{i + 8}",), size_bytes=64_000, start_time=0.0)
            for i in range(4)
        ]
        for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
            result = run_transfers(protocol, TINY, transfers, topology=topology)
            assert len(result.registry) == 4
            assert result.completion_fraction == 1.0

    def test_replicate_and_fetch_kinds(self):
        topology = FatTreeTopology(4)
        transfers = [
            TransferSpec(transfer_id=1, kind=TransferKind.REPLICATE, client="h0",
                         peers=("h8", "h12"), size_bytes=64_000, start_time=0.0),
            TransferSpec(transfer_id=2, kind=TransferKind.FETCH, client="h1",
                         peers=("h9", "h13"), size_bytes=64_000, start_time=0.0),
        ]
        for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
            result = run_transfers(protocol, TINY, transfers, topology=topology)
            assert result.completion_fraction == 1.0, protocol

    def test_run_result_statistics_present(self):
        result = run_unicast_demo(Protocol.POLYRAPTOR, object_bytes=100_000)
        assert result.events_processed > 0
        assert result.sim_time_s > 0
        assert result.num_hosts == 16


class TestFigure1a:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1a(TINY, replica_counts=(1, 3))

    def test_all_series_present(self, result):
        expected = {label_1a(p, n) for p in Protocol for n in (1, 3)}
        assert expected <= set(result.series)

    def test_all_sessions_complete(self, result):
        for label, run in result.runs.items():
            assert run.completion_fraction == 1.0, label

    def test_rank_curves_are_monotone(self, result):
        for series in result.series.values():
            values = [goodput for _, goodput in series]
            assert values == sorted(values)

    def test_rq_beats_tcp_and_degrades_less_with_replicas(self, result):
        rq1 = result.summary(Protocol.POLYRAPTOR, 1).mean_gbps
        rq3 = result.summary(Protocol.POLYRAPTOR, 3).mean_gbps
        tcp1 = result.summary(Protocol.TCP, 1).mean_gbps
        tcp3 = result.summary(Protocol.TCP, 3).mean_gbps
        assert rq1 > tcp1
        assert rq3 > tcp3
        # Replication hurts TCP (3 full unicast copies) far more than RQ (multicast).
        assert rq3 / rq1 > tcp3 / tcp1


class TestFigure1b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1b(TINY, sender_counts=(1, 3))

    def test_all_series_present(self, result):
        expected = {label_1b(p, n) for p in Protocol for n in (1, 3)}
        assert expected <= set(result.series)

    def test_rq_multi_source_not_worse_than_single_source(self, result):
        rq1 = result.summary(Protocol.POLYRAPTOR, 1).mean_gbps
        rq3 = result.summary(Protocol.POLYRAPTOR, 3).mean_gbps
        assert rq3 >= 0.8 * rq1

    def test_rq_beats_tcp(self, result):
        for senders in (1, 3):
            assert (result.summary(Protocol.POLYRAPTOR, senders).mean_gbps
                    > result.summary(Protocol.TCP, senders).mean_gbps)


class TestFigure1c:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1c(
            TINY,
            sender_counts=(2, 8),
            response_sizes=(256 * KILOBYTE,),
            num_seeds=2,
        )

    def test_series_and_points_present(self, result):
        label_rq = label_1c(Protocol.POLYRAPTOR, 256 * KILOBYTE)
        label_tcp = label_1c(Protocol.TCP, 256 * KILOBYTE)
        assert len(result.series[label_rq]) == 2
        assert len(result.series[label_tcp]) == 2

    def test_polyraptor_does_not_collapse_but_tcp_does(self, result):
        rq_points = result.points(Protocol.POLYRAPTOR, 256 * KILOBYTE)
        tcp_points = result.points(Protocol.TCP, 256 * KILOBYTE)
        rq_at_8 = next(p for p in rq_points if p.num_senders == 8)
        tcp_at_8 = next(p for p in tcp_points if p.num_senders == 8)
        assert rq_at_8.mean_goodput_gbps > 0.6
        assert tcp_at_8.mean_goodput_gbps < 0.5
        assert rq_at_8.mean_goodput_gbps > 2 * tcp_at_8.mean_goodput_gbps

    def test_confidence_intervals_reported(self, result):
        for points in result.series.values():
            for point in points:
                assert point.ci95_gbps >= 0
                assert len(point.samples) == 2


class TestAblations:
    def test_rq_overhead_ablation_failure_rates(self):
        from repro.experiments.ablations import rq_overhead_ablation

        points = rq_overhead_ablation(num_source_symbols=16, symbol_size=32, trials=10)
        by_overhead = {point.overhead: point for point in points}
        assert by_overhead[2].failure_rate <= by_overhead[0].failure_rate
        assert by_overhead[2].failures == 0

    def test_initial_window_ablation_monotone_up_to_bdp(self):
        from repro.experiments.ablations import initial_window_ablation

        points = initial_window_ablation(TINY, window_sizes=(2, 18), object_bytes=400_000)
        small, large = points[0].goodput_gbps, points[1].goodput_gbps
        assert large > small

    def test_spraying_ablation_runs(self):
        from repro.experiments.ablations import spraying_ablation

        points = spraying_ablation(TINY, num_transfers=6)
        labels = {point.label for point in points}
        assert labels == {"packet_spray", "ecmp_flow", "single_path"}
        spray = next(p for p in points if p.label == "packet_spray")
        single = next(p for p in points if p.label == "single_path")
        assert spray.goodput_gbps >= 0.9 * single.goodput_gbps
