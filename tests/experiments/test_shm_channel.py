"""Tests for the shared-memory transport and the persistent worker pool.

Three contracts:

* the shm channel is a faithful, leak-free serialisation path -- pack/unpack
  equals a pickle round trip, segments are always closed and unlinked, on
  success and on every failure path (corrupt header, worker exception);
* the persistent pool reuses its worker processes across sweeps and keeps
  results byte-identical to the sequential path for every worker count,
  transport and chunk size;
* the canonical decode-plan pre-warm stores exactly the keys a live lossy
  decode looks up.
"""

from __future__ import annotations

import glob
import json
import pickle

import numpy as np
import pytest

from repro.core.config import PolyraptorConfig
from repro.experiments import shm
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.parallel import (
    RunJob,
    WorkerJobError,
    execute_jobs,
    get_worker_pool,
    last_profile,
    shutdown_worker_pool,
)
from repro.experiments.shm import (
    ShmSlot,
    ShmTransportError,
    discard_segment,
    pack_object,
    shm_available,
    unpack_object,
)
from repro.utils.units import KILOBYTE
from repro.workloads.spec import TransferKind, TransferSpec

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable on this platform"
)


def _shm_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{shm.SHM_NAME_PREFIX}*")


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(_shm_segments())
    yield
    shutdown_worker_pool()
    leaked = set(_shm_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


PAYLOAD_CONFIG = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=3,
    object_bytes=48 * KILOBYTE,
    background_fraction=0.0,
    max_sim_time_s=30.0,
    polyraptor=PolyraptorConfig(carry_payload=True),
)


def _payload_jobs(seeds=(1, 2, 3, 4)) -> list[RunJob]:
    jobs = []
    for seed in seeds:
        config = PAYLOAD_CONFIG.with_seed(seed)
        transfers = (
            TransferSpec(transfer_id=1, kind=TransferKind.UNICAST, client="h0",
                         peers=("h8",), size_bytes=48_000, start_time=0.0),
            TransferSpec(transfer_id=2, kind=TransferKind.FETCH, client="h2",
                         peers=("h10", "h14"), size_bytes=48_000, start_time=0.0),
        )
        jobs.append(RunJob(key=seed, protocol=Protocol.POLYRAPTOR,
                           config=config, transfers=transfers))
    return jobs


def _fingerprints(runs) -> list[str]:
    """Canonical byte-comparable serialisation of each run (order preserved)."""
    return [json.dumps(run.canonical_dict(), sort_keys=True, default=repr)
            for run in runs]


class TestShmRoundTrip:
    def test_plain_objects_round_trip(self):
        payload = {"alpha": [1, 2, 3], "beta": ("x", 4.5), "gamma": None}
        slot, stats = pack_object(payload)
        assert unpack_object(slot) == payload
        assert stats.total_bytes > 0
        assert not _shm_segments()

    def test_ndarrays_round_trip_out_of_band(self):
        arrays = [np.arange(4096, dtype=np.uint8).reshape(16, 256),
                  np.linspace(0.0, 1.0, 513)]
        slot, stats = pack_object(arrays)
        clone = unpack_object(slot)
        for original, copy in zip(arrays, clone):
            np.testing.assert_array_equal(original, copy)
        # Protocol-5 out-of-band extraction: the planes' bytes must live
        # outside the pickle stream, not embedded in it.
        assert stats.buffer_bytes >= arrays[0].nbytes
        assert stats.stream_bytes < arrays[0].nbytes

    def test_round_trip_matches_pickle_path(self):
        run = execute_jobs(_payload_jobs(seeds=(1,)), num_workers=1)[0]
        slot, _ = pack_object(run)
        via_shm = unpack_object(slot)
        via_pickle = pickle.loads(pickle.dumps(run))
        assert _fingerprints([via_shm]) == _fingerprints([via_pickle])

    def test_unpacked_copies_outlive_the_segment(self):
        plane = np.arange(2048, dtype=np.uint8)
        slot, _ = pack_object({"plane": plane})
        clone = unpack_object(slot)  # copy=True default; segment unlinked
        assert not _shm_segments()
        clone["plane"][:] ^= 0xFF  # writable, private memory
        np.testing.assert_array_equal(clone["plane"], plane ^ 0xFF)

    def test_zero_copy_requires_keepalive(self):
        slot, _ = pack_object([1, 2, 3])
        with pytest.raises(ValueError, match="keepalive"):
            unpack_object(slot, copy=False)
        assert unpack_object(slot) == [1, 2, 3]

    def test_zero_copy_aliases_survive_unlink(self):
        plane = np.arange(4096, dtype=np.uint8)
        slot, _ = pack_object({"plane": plane})
        keepalive: list = []
        clone = unpack_object(slot, unlink=True, copy=False, keepalive=keepalive)
        assert len(keepalive) == 1
        assert not _shm_segments()  # name gone, mapping still alive
        np.testing.assert_array_equal(np.asarray(clone["plane"]), plane)
        del clone
        import gc

        gc.collect()
        for mapping in keepalive:
            mapping.close()


class TestShmFailurePaths:
    def test_missing_segment_raises(self):
        with pytest.raises(ShmTransportError, match="gone"):
            unpack_object(ShmSlot(name=f"{shm.SHM_NAME_PREFIX}missing", size=64))

    def test_corrupt_magic_raises_and_segment_is_reaped(self):
        slot, _ = pack_object({"x": 1})
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=slot.name)
        segment.buf[:4] = b"XXXX"
        segment.close()
        with pytest.raises(ShmTransportError, match="bad magic"):
            unpack_object(slot)
        # The consumer unlinks even when the payload is corrupt -- a poisoned
        # result must not leak its segment.
        assert not _shm_segments()

    def test_discard_segment_reaps_and_reports_absence(self):
        slot, _ = pack_object([1])
        assert discard_segment(slot) is True
        assert discard_segment(slot) is False
        assert not _shm_segments()

    def test_worker_exception_propagates_and_leaks_nothing(self):
        jobs = _payload_jobs(seeds=(1, 2))
        # A host that does not exist in the k=4 fabric: the worker's topology
        # lookup raises mid-batch, exercising the executor's reap path.
        bad = RunJob(
            key="bad", protocol=Protocol.POLYRAPTOR,
            config=PAYLOAD_CONFIG.with_seed(9),
            transfers=(TransferSpec(transfer_id=1, kind=TransferKind.UNICAST,
                                    client="h999", peers=("h0",),
                                    size_bytes=48_000, start_time=0.0),),
        )
        with pytest.raises(WorkerJobError, match="bad"):
            execute_jobs(jobs + [bad], num_workers=2, transport="shm", chunk=1)
        # The autouse fixture asserts no /dev/shm leak after pool teardown.


class TestPersistentPool:
    def test_pool_is_reused_across_sweeps(self):
        jobs = _payload_jobs(seeds=(1, 2))
        execute_jobs(jobs, num_workers=2, transport="shm")
        pool, reused = get_worker_pool(2, transport="shm")
        pids = pool.worker_pids
        assert reused
        execute_jobs(jobs, num_workers=2, transport="shm")
        profile = last_profile()
        assert profile.pool_reused
        assert profile.pool_spawn_s == 0.0
        pool, reused = get_worker_pool(2, transport="shm")
        assert reused and pool.worker_pids == pids

    def test_plan_store_ships_once_per_sweep_shape(self):
        jobs = _payload_jobs(seeds=(1, 2))
        execute_jobs(jobs, num_workers=2, transport="shm")
        first = last_profile()
        execute_jobs(jobs, num_workers=2, transport="shm")
        second = last_profile()
        assert first.plans_ship_s > 0.0  # shipped on the first sweep
        assert second.plans_ship_s == 0.0  # identical store: not re-shipped

    def test_shape_change_restarts_pool(self):
        jobs = _payload_jobs(seeds=(1,))
        execute_jobs(jobs + _payload_jobs(seeds=(2,)), num_workers=2, transport="shm")
        old = get_worker_pool(2, transport="shm")[0].worker_pids
        execute_jobs(jobs + _payload_jobs(seeds=(2,)), num_workers=3, transport="shm")
        new = get_worker_pool(3, transport="shm")[0].worker_pids
        assert len(new) == 3
        assert set(new) != set(old)

    def test_shm_ships_an_order_of_magnitude_fewer_pipe_bytes(self):
        jobs = _payload_jobs()
        execute_jobs(jobs, num_workers=2, transport="shm")
        shm_profile = last_profile()
        execute_jobs(jobs, num_workers=2, transport="pickle")
        pickle_profile = last_profile()
        assert shm_profile.shm_bytes > 0
        assert pickle_profile.shm_bytes == 0
        # The tentpole's point: payloads leave the pipe.  Descriptors are a
        # fixed few dozen bytes; pickled jobs+results+plans are kilobytes.
        assert pickle_profile.bytes_shipped >= 10 * shm_profile.bytes_shipped


class TestTransportDeterminism:
    """jobs in {1, 2, 4} x {shm, pickle} must all produce identical results."""

    @pytest.fixture(scope="class")
    def baseline(self):
        jobs = _payload_jobs()
        return jobs, _fingerprints(execute_jobs(jobs, num_workers=1))

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_unicast_fetch_sweep_matches_sequential(self, baseline, workers, transport):
        jobs, expected = baseline
        runs = execute_jobs(jobs, num_workers=workers, transport=transport)
        assert _fingerprints(runs) == expected

    def test_chunk_size_never_affects_results(self, baseline):
        jobs, expected = baseline
        for chunk in (1, 3, 64):
            runs = execute_jobs(jobs, num_workers=2, transport="shm", chunk=chunk)
            assert _fingerprints(runs) == expected


class TestScenarioDeterminism:
    """Whole-scenario determinism with payload coding, jobs in {1, 2, 4}."""

    CONFIG = ExperimentConfig(
        fattree_k=4, num_foreground_transfers=3, object_bytes=48 * KILOBYTE,
        background_fraction=0.0, max_sim_time_s=30.0,
        polyraptor=PolyraptorConfig(carry_payload=True),
    )

    def test_figure1a_matches_for_all_worker_counts(self):
        from repro.experiments.figure1a import run_figure1a

        results = [run_figure1a(self.CONFIG, replica_counts=(1,), num_seeds=2,
                                jobs=jobs)
                   for jobs in (1, 2, 4)]
        for other in results[1:]:
            assert other.series == results[0].series
            assert other.summaries == results[0].summaries
            assert other.codec_stats == results[0].codec_stats

    def test_figure1b_matches_for_all_worker_counts(self):
        from repro.experiments.figure1b import run_figure1b

        results = [run_figure1b(self.CONFIG, sender_counts=(3,), num_seeds=2,
                                jobs=jobs)
                   for jobs in (1, 2, 4)]
        for other in results[1:]:
            assert other.series == results[0].series
            assert other.summaries == results[0].summaries
            assert other.codec_stats == results[0].codec_stats

    def test_sharded_figure_records_profile(self):
        from repro.experiments.figure1a import run_figure1a

        result = run_figure1a(self.CONFIG, replica_counts=(1,), num_seeds=2, jobs=2)
        assert result.exec_profile is not None
        assert result.exec_profile["workers"] == 2
        assert result.exec_profile["jobs_total"] == 4
        assert result.exec_profile["transport"] in ("shm", "pickle")


class TestDecodePrewarm:
    def test_common_loss_patterns_orders_singletons_first(self):
        from repro.rq.backend import common_loss_patterns

        patterns = common_loss_patterns(4, max_missing=2, budget=None)
        assert patterns[:4] == [(0,), (1,), (2,), (3,)]
        assert patterns[4:7] == [(0, 1), (0, 2), (0, 3)]
        assert len(patterns) == 4 + 6

    def test_budget_truncates_deterministically(self):
        from repro.rq.backend import common_loss_patterns

        assert common_loss_patterns(10, budget=12) == common_loss_patterns(
            10, budget=None
        )[:12]

    def test_prewarmed_keys_hit_a_live_lossy_decode(self):
        import random

        from repro.rq.backend import CodecContext, prewarm_canonical_decode_plans
        from repro.rq.decoder import BlockDecoder
        from repro.rq.encoder import BlockEncoder

        k, symbol_size = 12, 64
        store = prewarm_canonical_decode_plans([k])
        context = CodecContext("planned", preload=store)
        rng = random.Random(3)
        source = [bytes(rng.getrandbits(8) for _ in range(symbol_size))
                  for _ in range(k)]
        encoder = BlockEncoder(source, context=CodecContext("reference"))
        # Lose source symbol 3; receive the rest plus repair ESIs k..k+2 --
        # exactly the received set the singleton pre-warm pattern models.
        decoder = BlockDecoder(k, symbol_size, context=context)
        for esi in [e for e in range(k) if e != 3] + [k, k + 1, k + 2]:
            decoder.add_symbol(esi, encoder.symbol(esi))
        result = decoder.decode()
        assert result.success
        assert b"".join(result.source_symbols) == b"".join(source)
        stats = context.stats_dict()
        assert stats["decode_plan_cache"]["hits"] >= 1
        assert stats["decode_plan_cache"]["misses"] == 0

    def test_lossy_payload_sweep_triggers_auto_decode_prewarm(self):
        from repro.experiments.parallel import plan_store_for_jobs
        from repro.faults.schedule import gray_failure_schedule
        from repro.network.topology import FatTreeTopology
        from repro.sim.randomness import RandomStreams

        jobs = _payload_jobs(seeds=(1,))
        plain = plan_store_for_jobs(jobs)
        schedule = gray_failure_schedule(
            FatTreeTopology(4), RandomStreams(1).stream("gray"),
            loss_probability=0.05,
        )
        lossy = [RunJob(key=job.key, protocol=job.protocol, config=job.config,
                        transfers=job.transfers, fault_schedule=schedule)
                 for job in jobs]
        warmed = plan_store_for_jobs(lossy)
        decode_keys = [key for key in warmed.plans if key[0] == "decode"]
        assert decode_keys, "lossy payload sweep should pre-warm decode plans"
        assert not [key for key in plain.plans if key[0] == "decode"]
