"""End-to-end tests: plan-cache counters flow from sessions into reports.

These run real payload-carrying simulations on the ``planned`` backend: the
runner synthesises object bytes, senders encode them through the shared
:class:`~repro.rq.backend.CodecContext`, receivers decode, and the run
result carries the plan-cache hit/miss counters that experiment reports
render.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import PolyraptorConfig
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.figure1a import run_figure1a
from repro.experiments.report import format_codec_stats
from repro.experiments.runner import build_environment, offer_transfers, run_transfers
from repro.network.topology import FatTreeTopology
from repro.utils.units import KILOBYTE
from repro.workloads.spec import TransferKind, TransferSpec

PAYLOAD_CONFIG = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=4,
    object_bytes=64 * KILOBYTE,
    background_fraction=0.0,
    max_sim_time_s=30.0,
    polyraptor=PolyraptorConfig(carry_payload=True, codec_backend="planned"),
)


def _workload() -> list[TransferSpec]:
    return [
        TransferSpec(transfer_id=1, kind=TransferKind.UNICAST, client="h0",
                     peers=("h8",), size_bytes=64_000, start_time=0.0),
        TransferSpec(transfer_id=2, kind=TransferKind.REPLICATE, client="h1",
                     peers=("h9", "h13"), size_bytes=64_000, start_time=0.0),
        TransferSpec(transfer_id=3, kind=TransferKind.FETCH, client="h2",
                     peers=("h10", "h14"), size_bytes=64_000, start_time=0.0),
    ]


class TestCodecStatsEndToEnd:
    def test_planned_backend_run_reports_cache_activity(self):
        topology = FatTreeTopology(4)
        result = run_transfers(Protocol.POLYRAPTOR, PAYLOAD_CONFIG, _workload(),
                               topology=topology)
        assert result.completion_fraction == 1.0
        stats = result.codec_stats
        assert stats is not None
        assert stats["backend"] == "planned"
        assert stats["blocks_encoded"] >= 3
        cache = stats["plan_cache"]
        # Three same-sized objects share one K': the first block misses,
        # later blocks must hit the shared per-simulation plan cache.
        assert cache["misses"] >= 1
        assert cache["hits"] >= 1
        assert 0.0 < cache["hit_rate"] <= 1.0

    def test_payloads_decode_byte_identically(self):
        topology = FatTreeTopology(4)
        env = build_environment(Protocol.POLYRAPTOR, PAYLOAD_CONFIG, topology=topology)
        transfers = _workload()
        offer_transfers(env, Protocol.POLYRAPTOR, transfers)
        env.sim.run(until=30.0)
        from repro.experiments.runner import _object_payload

        receiver_of = {1: "h8", 2: "h9", 3: "h2"}
        for spec in transfers:
            agent = env.polyraptor_agents[receiver_of[spec.transfer_id]]
            session = agent.receiver_session(spec.transfer_id)
            assert session.completed, f"transfer {spec.transfer_id} incomplete"
            assert session.received_data == _object_payload(spec)

    def test_tcp_runs_have_no_codec_stats(self):
        topology = FatTreeTopology(4)
        transfers = [_workload()[0]]
        result = run_transfers(Protocol.TCP, replace(PAYLOAD_CONFIG), transfers,
                               topology=topology)
        assert result.codec_stats is None

    def test_reference_backend_selectable_per_run(self):
        topology = FatTreeTopology(4)
        config = replace(
            PAYLOAD_CONFIG,
            polyraptor=PolyraptorConfig(carry_payload=True, codec_backend="reference"),
        )
        result = run_transfers(Protocol.POLYRAPTOR, config, [_workload()[0]],
                               topology=topology)
        assert result.completion_fraction == 1.0
        assert result.codec_stats["backend"] == "reference"
        assert result.codec_stats["plan_cache"]["hits"] == 0
        assert result.codec_stats["plan_cache"]["misses"] == 0

    def test_figure1a_runs_on_planned_backend_with_counters(self):
        config = replace(
            PAYLOAD_CONFIG,
            num_foreground_transfers=3,
            object_bytes=48 * KILOBYTE,
        )
        result = run_figure1a(config, replica_counts=(1,),
                              protocols=(Protocol.POLYRAPTOR,))
        label = "1 Replica RQ"
        run = result.runs[label]
        assert run.completion_fraction == 1.0
        assert run.codec_stats is not None
        assert run.codec_stats["backend"] == "planned"
        assert run.codec_stats["plan_cache"]["hits"] >= 1

        rendered = format_codec_stats({label: run.codec_stats})
        assert "planned" in rendered
        assert "plan hits" in rendered


class TestCodecStatsReport:
    def test_missing_stats_render_as_dashes(self):
        rendered = format_codec_stats({"1 Replica TCP": None})
        assert "1 Replica TCP" in rendered
        assert "-" in rendered
