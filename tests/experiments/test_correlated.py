"""Tests for the correlated & gray failure experiment.

The headline contracts (ISSUE acceptance): a correlated sweep sharded over
``jobs=N`` is indistinguishable from ``jobs=1`` in every reported number --
per-transfer metrics, fault counters (including the per-builder cause
attribution) and codec counters -- and ``convergence_delay=0`` reproduces
the instantaneous-reconvergence behaviour exactly (the delay-0 cell is
byte-identical to the plain SRLG cell it replays).
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.correlated import (
    correlated_labels,
    expand_correlated_sweep,
    run_correlated,
)
from repro.experiments.parallel import execute_jobs
from repro.experiments.report import format_correlated
from repro.experiments.runner import run_transfers
from repro.utils.units import KILOBYTE

QUICK = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=6,
    object_bytes=48 * KILOBYTE,
    background_fraction=0.0,
    max_sim_time_s=20.0,
)

AXES = dict(srlg_sizes=(1, 3), gray_rates=(0.02,), convergence_delays=(0.0, 0.001))


def _transfer_metrics(run):
    return [
        (r.transfer_id, r.label, r.transfer_bytes, r.start_time, r.completion_time)
        for r in run.registry.records
    ]


class TestLabels:
    def test_sweep_order_and_contents(self):
        labels = correlated_labels((1, 3), (0.02,), (0.0, 0.001))
        assert labels == (
            "healthy", "srlg-1", "srlg-3", "rack", "gray-0.02",
            "delay-0ms", "delay-1ms",
        )

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            correlated_labels((2, 2), (0.02,), (0.0,))


class TestSweepExpansion:
    @pytest.fixture(scope="class")
    def jobs(self):
        return expand_correlated_sweep(
            QUICK, protocols=(Protocol.POLYRAPTOR, Protocol.TCP), num_seeds=1, **AXES
        )

    def test_same_schedule_for_both_protocols(self, jobs):
        by_key = {job.key: job for job in jobs}
        for label in ("srlg-1", "rack", "gray-0.02"):
            assert by_key[(1, "polyraptor", label)].fault_schedule == \
                by_key[(1, "tcp", label)].fault_schedule

    def test_healthy_cell_has_no_schedule(self, jobs):
        by_key = {job.key: job for job in jobs}
        assert by_key[(1, "polyraptor", "healthy")].fault_schedule is None

    def test_delay_cells_replay_the_first_srlg_schedule(self, jobs):
        by_key = {job.key: job for job in jobs}
        reference = by_key[(1, "polyraptor", "srlg-1")].fault_schedule
        for label in ("delay-0ms", "delay-1ms"):
            assert by_key[(1, "polyraptor", label)].fault_schedule == reference

    def test_delay_rides_inside_the_job_config(self, jobs):
        by_key = {job.key: job for job in jobs}
        assert by_key[(1, "tcp", "delay-1ms")].config.convergence_delay_s == 0.001
        assert by_key[(1, "tcp", "delay-0ms")].config.convergence_delay_s == 0.0
        assert by_key[(1, "tcp", "srlg-1")].config.convergence_delay_s == 0.0

    def test_same_workload_for_every_cell(self, jobs):
        transfers = {job.transfers for job in jobs if job.key[0] == 1}
        assert len(transfers) == 1

    def test_jobs_pickle_unchanged(self, jobs):
        clone = pickle.loads(pickle.dumps(jobs[-1]))
        assert clone.fault_schedule == jobs[-1].fault_schedule
        assert clone.config == jobs[-1].config

    def test_axis_validation(self):
        with pytest.raises(ValueError, match="srlg_sizes"):
            expand_correlated_sweep(QUICK, (), (0.02,), (0.0,),
                                    (Protocol.POLYRAPTOR,), 1)
        with pytest.raises(ValueError, match="gray rates"):
            expand_correlated_sweep(QUICK, (1,), (0.0,), (0.0,),
                                    (Protocol.POLYRAPTOR,), 1)
        with pytest.raises(ValueError, match="delays"):
            expand_correlated_sweep(QUICK, (1,), (0.02,), (-0.001,),
                                    (Protocol.POLYRAPTOR,), 1)


class TestShardedDeterminism:
    """jobs=N must reproduce jobs=1 exactly, cause counters included."""

    @pytest.fixture(scope="class")
    def sequential_and_sharded(self):
        jobs = expand_correlated_sweep(
            QUICK, protocols=(Protocol.POLYRAPTOR, Protocol.TCP), num_seeds=2, **AXES
        )
        return jobs, execute_jobs(jobs, num_workers=1), execute_jobs(jobs, num_workers=4)

    def test_per_transfer_metrics_identical(self, sequential_and_sharded):
        _, sequential, sharded = sequential_and_sharded
        for seq_run, par_run in zip(sequential, sharded):
            assert _transfer_metrics(seq_run) == _transfer_metrics(par_run)

    def test_fault_stats_identical_including_causes(self, sequential_and_sharded):
        jobs, sequential, sharded = sequential_and_sharded
        causes_seen = set()
        for job, seq_run, par_run in zip(jobs, sequential, sharded):
            assert seq_run.fault_stats == par_run.fault_stats
            if seq_run.fault_stats:
                causes_seen.update(
                    k for k in seq_run.fault_stats if k.startswith("cause_")
                )
        assert {"cause_srlg", "cause_rack_power", "cause_gray"} <= causes_seen

    def test_convergence_counters_identical(self, sequential_and_sharded):
        jobs, sequential, sharded = sequential_and_sharded
        lagged = 0
        for job, seq_run, par_run in zip(jobs, sequential, sharded):
            if not job.fault_schedule:
                continue
            assert seq_run.fault_stats["route_installs"] == \
                par_run.fault_stats["route_installs"]
            if job.config.convergence_delay_s > 0:
                lagged += 1
        assert lagged > 0


class TestConvergenceDelayZeroIsExact:
    """The acceptance bar: delay 0 reproduces instantaneous behaviour."""

    def test_delay_zero_cell_equals_plain_srlg_cell(self):
        result = run_correlated(QUICK, num_seeds=1, jobs=1, **AXES)
        for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
            anchored = result.point(protocol, "delay-0ms")
            plain = result.point(protocol, "srlg-1")
            assert anchored.median_fct_ms == plain.median_fct_ms
            assert anchored.p90_fct_ms == plain.p90_fct_ms
            assert anchored.completed == plain.completed
            assert anchored.fault_stats == plain.fault_stats

    def test_explicit_delay_zero_config_matches_default_config_run(self):
        """A config that sets convergence_delay_s=0.0 explicitly is
        byte-identical to one that never mentions the knob."""
        jobs = expand_correlated_sweep(
            QUICK, srlg_sizes=(2,), gray_rates=(0.02,), convergence_delays=(0.0,),
            protocols=(Protocol.POLYRAPTOR,), num_seeds=1,
        )
        srlg_job = next(job for job in jobs if job.key[2] == "srlg-2")
        explicit = replace(srlg_job.config, convergence_delay_s=0.0)
        baseline = run_transfers(
            srlg_job.protocol, srlg_job.config, list(srlg_job.transfers),
            fault_schedule=srlg_job.fault_schedule,
        )
        pinned = run_transfers(
            srlg_job.protocol, explicit, list(srlg_job.transfers),
            fault_schedule=srlg_job.fault_schedule,
        )
        assert _transfer_metrics(baseline) == _transfer_metrics(pinned)
        assert baseline.fault_stats == pinned.fault_stats
        assert baseline.events_processed == pinned.events_processed


class TestRunCorrelated:
    @pytest.fixture(scope="class")
    def result(self):
        return run_correlated(QUICK, num_seeds=1, jobs=1, **AXES)

    def test_all_cells_reported_for_both_protocols(self, result):
        assert result.labels == correlated_labels(**{
            "srlg_sizes": AXES["srlg_sizes"],
            "gray_rates": AXES["gray_rates"],
            "convergence_delays": AXES["convergence_delays"],
        })
        for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
            for label in result.labels:
                point = result.point(protocol, label)
                assert point.offered == QUICK.num_foreground_transfers
                assert 0.0 <= point.completion_fraction <= 1.0

    def test_healthy_baseline_ratio_is_one(self, result):
        for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
            point = result.point(protocol, "healthy")
            assert point.fault_stats is None
            assert point.fct_vs_healthy == pytest.approx(1.0)

    def test_gray_cells_show_loss_but_no_reroutes(self, result):
        for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
            stats = result.point(protocol, "gray-0.02").fault_stats
            assert stats["links_lossy"] > 0
            assert stats["reroutes"] == 0  # routing never reacts to gray loss
            assert stats["cause_gray"] == stats["events_applied"]

    def test_rack_cell_shows_compound_failure(self, result):
        for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
            stats = result.point(protocol, "rack").fault_stats
            assert stats["switches_failed"] == 1
            assert stats["links_failed"] > 0
            assert stats["recomputes_requested"] == 2  # down batch + recovery batch

    def test_polyraptor_rides_out_every_cell(self, result):
        for label in result.labels:
            assert result.point(Protocol.POLYRAPTOR, label).completion_fraction == 1.0

    def test_codec_stats_merged_per_protocol(self, result):
        assert result.codec_stats["polyraptor"] is not None
        assert result.codec_stats["tcp"] is None

    def test_format_produces_tables_with_causes(self, result):
        text = format_correlated(result)
        assert "vs healthy" in text
        assert "Fault counters" in text
        assert "causes" in text
        assert "srlg:" in text and "gray:" in text and "rack_power:" in text
        assert "delay-1ms" in text
