"""Determinism tests for the sharded parallel experiment executor.

The contract under test: ``execute_jobs(jobs, num_workers=N)`` returns the
same results, in the same order, for every N -- including the plan-cache
hit/miss counters, because the sequential path and every worker preload the
same pre-warmed plan store.  Workers use the ``spawn`` start method, so these
tests also prove that every job artifact survives pickling.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import PolyraptorConfig
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.figure1a import run_figure1a
from repro.experiments.parallel import (
    RunJob,
    available_cpus,
    default_plan_cache_path,
    execute_jobs,
    last_profile,
    plan_store_for_jobs,
    resolve_jobs,
    run_job,
    set_plan_cache_path,
    set_progress_logger,
    sweep_block_sizes,
)
from repro.experiments.report import merge_codec_stats
from repro.utils.units import KILOBYTE
from repro.workloads.spec import TransferKind, TransferSpec

PAYLOAD_CONFIG = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=4,
    object_bytes=64 * KILOBYTE,
    background_fraction=0.0,
    max_sim_time_s=30.0,
    polyraptor=PolyraptorConfig(carry_payload=True),
)


def _payload_jobs(seeds=(1, 2, 3, 4)) -> list[RunJob]:
    """One payload-carrying Polyraptor job per seed (codec genuinely runs)."""
    jobs = []
    for seed in seeds:
        config = PAYLOAD_CONFIG.with_seed(seed)
        transfers = (
            TransferSpec(transfer_id=1, kind=TransferKind.UNICAST, client="h0",
                         peers=("h8",), size_bytes=64_000, start_time=0.0),
            TransferSpec(transfer_id=2, kind=TransferKind.FETCH, client="h2",
                         peers=("h10", "h14"), size_bytes=64_000, start_time=0.0),
        )
        jobs.append(RunJob(key=seed, protocol=Protocol.POLYRAPTOR,
                           config=config, transfers=transfers))
    return jobs


def _transfer_metrics(run):
    """The per-transfer facts the figures are computed from."""
    return [
        (r.transfer_id, r.label, r.transfer_bytes, r.start_time, r.completion_time)
        for r in run.registry.records
    ]


class TestRunJob:
    def test_jobs_are_picklable(self):
        job = _payload_jobs()[0]
        clone = pickle.loads(pickle.dumps(job))
        assert clone.key == job.key
        assert clone.config == job.config
        assert clone.transfers == job.transfers

    def test_run_results_are_picklable(self):
        run = run_job(_payload_jobs(seeds=(1,))[0])
        clone = pickle.loads(pickle.dumps(run))
        assert _transfer_metrics(clone) == _transfer_metrics(run)
        assert clone.codec_stats == run.codec_stats


class TestPlanStoreGating:
    def test_identity_mode_jobs_need_no_store(self):
        config = ExperimentConfig.quick()
        job = RunJob(
            key=0, protocol=Protocol.POLYRAPTOR, config=config,
            transfers=(TransferSpec(transfer_id=1, kind=TransferKind.UNICAST,
                                    client="h0", peers=("h8",),
                                    size_bytes=64_000, start_time=0.0),),
        )
        assert plan_store_for_jobs([job]) is None

    def test_tcp_jobs_need_no_store(self):
        job = RunJob(
            key=0, protocol=Protocol.TCP, config=PAYLOAD_CONFIG,
            transfers=_payload_jobs(seeds=(1,))[0].transfers,
        )
        assert plan_store_for_jobs([job]) is None

    def test_payload_jobs_get_exactly_their_block_sizes(self):
        jobs = _payload_jobs(seeds=(1,))
        store = plan_store_for_jobs(jobs)
        assert store is not None
        assert len(store) == len(sweep_block_sizes(jobs))
        assert len(store) >= 1


class TestShardedDeterminism:
    """--jobs N must be indistinguishable from --jobs 1 in every reported number."""

    @pytest.fixture(scope="class")
    def sequential_and_sharded(self):
        jobs = _payload_jobs()
        return jobs, execute_jobs(jobs, num_workers=1), execute_jobs(jobs, num_workers=4)

    def test_results_arrive_in_job_order(self, sequential_and_sharded):
        jobs, sequential, sharded = sequential_and_sharded
        assert len(sequential) == len(sharded) == len(jobs)

    def test_per_transfer_metrics_identical(self, sequential_and_sharded):
        _, sequential, sharded = sequential_and_sharded
        for seq_run, par_run in zip(sequential, sharded):
            assert _transfer_metrics(seq_run) == _transfer_metrics(par_run)

    def test_fabric_counters_identical(self, sequential_and_sharded):
        _, sequential, sharded = sequential_and_sharded
        for seq_run, par_run in zip(sequential, sharded):
            assert seq_run.events_processed == par_run.events_processed
            assert seq_run.trimmed_packets == par_run.trimmed_packets
            assert seq_run.dropped_packets == par_run.dropped_packets
            assert seq_run.sim_time_s == par_run.sim_time_s

    def test_per_run_codec_stats_identical(self, sequential_and_sharded):
        _, sequential, sharded = sequential_and_sharded
        for seq_run, par_run in zip(sequential, sharded):
            assert seq_run.codec_stats == par_run.codec_stats

    def test_merged_codec_stats_identical(self, sequential_and_sharded):
        _, sequential, sharded = sequential_and_sharded
        merged_seq = merge_codec_stats([run.codec_stats for run in sequential])
        merged_par = merge_codec_stats([run.codec_stats for run in sharded])
        assert merged_seq == merged_par
        assert merged_seq["shards"] == 4
        # The parent pre-warmed every encode plan, so no shard ever misses.
        assert merged_seq["plan_cache"]["hits"] > 0
        assert merged_seq["plan_cache"]["misses"] == 0

    def test_everything_completed(self, sequential_and_sharded):
        _, sequential, _ = sequential_and_sharded
        for run in sequential:
            assert run.completion_fraction == 1.0


class TestFigureSweepDeterminism:
    def test_figure1a_multi_seed_sweep_matches_sequential(self):
        config = ExperimentConfig(
            fattree_k=4, num_foreground_transfers=3, object_bytes=48 * KILOBYTE,
            background_fraction=0.0, max_sim_time_s=30.0,
            polyraptor=PolyraptorConfig(carry_payload=True),
        )
        sequential = run_figure1a(config, replica_counts=(1,), num_seeds=2, jobs=1)
        sharded = run_figure1a(config, replica_counts=(1,), num_seeds=2, jobs=4)
        assert sequential.series == sharded.series
        assert sequential.summaries == sharded.summaries
        assert sequential.codec_stats == sharded.codec_stats
        label = "1 Replica RQ"
        assert sequential.codec_stats[label]["shards"] == 2
        assert sequential.codec_stats[label]["plan_cache"]["misses"] == 0


class TestMergeCodecStats:
    def test_no_stats_merges_to_none(self):
        assert merge_codec_stats([None, None]) is None
        assert merge_codec_stats([]) is None

    def test_counters_sum_and_hit_rate_recomputes(self):
        one = {"backend": "planned", "blocks_encoded": 2, "blocks_decoded": 1,
               "plan_cache": {"hits": 3, "misses": 1, "evictions": 0, "hit_rate": 0.75},
               "cached_plans": 1}
        two = {"backend": "planned", "blocks_encoded": 4, "blocks_decoded": 0,
               "plan_cache": {"hits": 1, "misses": 3, "evictions": 2, "hit_rate": 0.25},
               "cached_plans": 3}
        merged = merge_codec_stats([one, None, two])
        assert merged["backend"] == "planned"
        assert merged["blocks_encoded"] == 6
        assert merged["blocks_decoded"] == 1
        assert merged["plan_cache"]["hits"] == 4
        assert merged["plan_cache"]["misses"] == 4
        assert merged["plan_cache"]["evictions"] == 2
        assert merged["plan_cache"]["hit_rate"] == pytest.approx(0.5)
        # cached_plans is a max, not a sum: shards hold the same pre-warmed
        # plans, so summing would double-count them.
        assert merged["cached_plans"] == 3
        assert merged["shards"] == 2

    def test_mixed_backends_are_named(self):
        one = {"backend": "planned", "plan_cache": {}}
        two = {"backend": "reference", "plan_cache": {}}
        assert merge_codec_stats([one, two])["backend"] == "planned+reference"


class TestResolveJobs:
    def test_ints_and_decimal_strings_pass_through(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("5") == 5

    def test_auto_resolves_to_available_cpus(self):
        # Affinity-aware, not raw cpu_count: a taskset/cgroup-limited runner
        # must not spawn more workers than it can actually schedule.
        assert resolve_jobs("auto") == available_cpus()
        assert resolve_jobs(" AUTO ") == resolve_jobs("auto")

    def test_available_cpus_respects_affinity(self):
        import os

        if hasattr(os, "sched_getaffinity"):
            assert available_cpus() == max(1, len(os.sched_getaffinity(0)))
        else:  # pragma: no cover - non-Linux
            assert available_cpus() == max(1, os.cpu_count() or 1)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs("many")


class TestProgressLogging:
    def test_progress_fires_once_per_job_in_order(self):
        jobs = _payload_jobs(seeds=(1, 2))
        calls = []
        execute_jobs(jobs, num_workers=1,
                     progress=lambda i, n, job, run: calls.append((i, n, job.key)))
        assert calls == [(0, 2, 1), (1, 2, 2)]

    def test_default_progress_logger_is_consulted(self):
        jobs = _payload_jobs(seeds=(1,))
        calls = []
        set_progress_logger(lambda i, n, job, run: calls.append(i))
        try:
            execute_jobs(jobs, num_workers=1)
        finally:
            set_progress_logger(None)
        assert calls == [0]

    def test_progress_fires_for_sharded_runs(self):
        jobs = _payload_jobs(seeds=(1, 2, 3))
        calls = []
        execute_jobs(jobs, num_workers=2,
                     progress=lambda i, n, job, run: calls.append(i))
        assert calls == [0, 1, 2]


class TestExecutorProfile:
    def test_sequential_run_records_inline_profile(self):
        jobs = _payload_jobs(seeds=(1,))
        execute_jobs(jobs, num_workers=1, label="unit")
        profile = last_profile()
        assert profile is not None
        assert profile.transport == "inline"
        assert profile.label == "unit"
        assert profile.jobs_total == 1
        assert profile.bytes_shipped == 0
        assert profile.run_s > 0
        assert profile.wall_s >= profile.run_s

    def test_profile_round_trips_through_as_dict(self):
        jobs = _payload_jobs(seeds=(1,))
        execute_jobs(jobs, num_workers=1)
        snapshot = last_profile().as_dict()
        for key in ("transport", "workers", "jobs_total", "bytes_shipped",
                    "shm_bytes", "prewarm_s", "pool_spawn_s", "worker_init_s",
                    "plans_ship_s", "serialize_s", "merge_s", "run_s", "wall_s",
                    "cpu_count"):
            assert key in snapshot

    def test_format_exec_profile_renders_and_handles_none(self):
        from repro.experiments.report import format_exec_profile

        jobs = _payload_jobs(seeds=(1,))
        execute_jobs(jobs, num_workers=1)
        table = format_exec_profile(last_profile().as_dict())
        assert "transport" in table and "inline" in table
        assert "no executor profile" in format_exec_profile(None)


class TestPersistentPlanCache:
    def test_cache_file_created_and_reused(self, tmp_path):
        jobs = _payload_jobs(seeds=(1,))
        path = tmp_path / "plans.pkl"
        set_plan_cache_path(path)
        try:
            first = execute_jobs(jobs)
            assert path.exists()
            written = path.stat().st_mtime_ns
            second = execute_jobs(jobs)  # fully warm: loaded, not rewritten
            assert path.stat().st_mtime_ns == written
        finally:
            set_plan_cache_path(None)
        assert first[0].codec_stats == second[0].codec_stats
        assert _transfer_metrics(first[0]) == _transfer_metrics(second[0])

    def test_corrupt_cache_file_is_rebuilt(self, tmp_path):
        jobs = _payload_jobs(seeds=(1,))
        path = tmp_path / "plans.pkl"
        path.write_bytes(b"not a pickle")
        set_plan_cache_path(path)
        try:
            runs = execute_jobs(jobs)
        finally:
            set_plan_cache_path(None)
        assert runs[0].completion_fraction == 1.0
        from repro.rq.plan import PlanStore

        assert len(PlanStore.load(path)) >= 1  # rebuilt and saved over the junk

    def test_other_schema_cache_file_warns_and_is_rebuilt(self, tmp_path):
        # A cache written under another plan-key schema (e.g. the pre-canonical
        # exact-ESI keying) must be discarded with a warning, then rebuilt --
        # never silently preloaded into worker caches.
        import pickle as _pickle

        from repro.rq.plan import PLAN_STORE_SCHEMA, PlanStore
        from repro.rq.backend import prewarm_encode_plans

        stale = prewarm_encode_plans([11])
        del stale.__dict__["schema"]  # as written by pre-versioning builds
        path = tmp_path / "plans.pkl"
        path.write_bytes(_pickle.dumps(stale, protocol=_pickle.HIGHEST_PROTOCOL))
        jobs = _payload_jobs(seeds=(1,))
        set_plan_cache_path(path)
        try:
            with pytest.warns(RuntimeWarning, match="discarding plan cache"):
                store = plan_store_for_jobs(jobs)
        finally:
            set_plan_cache_path(None)
        assert store is not None and len(store) >= 1
        rebuilt = PlanStore.load(path)  # rewritten under the current schema
        assert rebuilt.schema == PLAN_STORE_SCHEMA

    def test_default_path_is_keyed_by_version(self):
        from repro import __version__

        path = default_plan_cache_path()
        assert __version__ in path.name
        assert path.parent.name == "repro"
        assert path.parent.parent.name == ".cache"


class TestCliJobs:
    def test_jobs_and_seeds_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["figure1a", "--jobs", "4", "--seeds", "2"])
        assert args.jobs == 4
        assert args.seeds == 2

    def test_jobs_auto_parses_to_available_cpus(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["figure1a", "--jobs", "auto"])
        assert args.jobs == available_cpus()

    def test_shm_and_chunk_flags_parse(self):
        from repro.cli import build_parser

        assert build_parser().parse_args(["mix"]).shm is None
        assert build_parser().parse_args(["mix", "--shm"]).shm is True
        assert build_parser().parse_args(["mix", "--no-shm"]).shm is False
        assert build_parser().parse_args(["mix", "--chunk", "3"]).chunk == 3

    def test_jobs_garbage_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure1a", "--jobs", "lots"])

    def test_jobs_defaults_to_sequential(self):
        from repro.cli import build_parser

        for command in ("figure1a", "figure1b", "figure1c", "ablations",
                        "hotspot", "mix", "resilience", "all"):
            args = build_parser().parse_args([command])
            assert args.jobs == 1
            assert args.progress is False
            assert args.plan_cache is None

    def test_plan_cache_flag_with_and_without_path(self):
        from repro.cli import build_parser

        assert build_parser().parse_args(["mix", "--plan-cache"]).plan_cache == "auto"
        args = build_parser().parse_args(["mix", "--plan-cache", "/tmp/p.pkl"])
        assert args.plan_cache == "/tmp/p.pkl"

    def test_seeds_only_accepted_by_multi_seed_sweeps(self):
        from repro.cli import build_parser

        for command in ("figure1a", "figure1b", "figure1c", "resilience", "all"):
            assert build_parser().parse_args([command]).seeds is None
        for command in ("ablations", "hotspot", "mix"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--seeds", "2"])

    def test_resilience_intensities_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["resilience", "--intensities", "0", "0.5", "1"])
        assert args.intensities == [0.0, 0.5, 1.0]
