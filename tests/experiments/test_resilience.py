"""Tests for the path-resilience experiment and fault determinism.

The headline contract (ISSUE acceptance): a resilience sweep sharded over
``jobs=N`` workers is indistinguishable from ``jobs=1`` in every reported
number -- per-transfer metrics, fault event counts and fault-caused packet
drops -- because fault schedules are immutable value objects generated in
the parent and every randomness source derives from the job's config seed.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.parallel import RunJob, execute_jobs
from repro.experiments.report import (
    format_fault_stats,
    format_resilience,
    merge_fault_stats,
)
from repro.experiments.resilience import expand_resilience_sweep, run_resilience
from repro.experiments.runner import run_transfers
from repro.faults.schedule import FaultSchedule, link_down, link_up
from repro.utils.units import KILOBYTE
from repro.workloads.spec import TransferKind, TransferSpec

QUICK = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=6,
    object_bytes=48 * KILOBYTE,
    background_fraction=0.0,
    max_sim_time_s=20.0,
)


def _transfer_metrics(run):
    return [
        (r.transfer_id, r.label, r.transfer_bytes, r.start_time, r.completion_time)
        for r in run.registry.records
    ]


class TestRunnerIntegration:
    def test_empty_schedule_reports_no_fault_stats(self):
        spec = TransferSpec(transfer_id=1, kind=TransferKind.UNICAST, client="h0",
                            peers=("h15",), size_bytes=48_000, start_time=0.0)
        run = run_transfers(Protocol.POLYRAPTOR, QUICK, [spec],
                            fault_schedule=FaultSchedule())
        assert run.fault_stats is None

    def test_transient_link_failure_is_survived_and_counted(self):
        spec = TransferSpec(transfer_id=1, kind=TransferKind.UNICAST, client="h0",
                            peers=("h15",), size_bytes=48_000, start_time=0.0)
        schedule = FaultSchedule((
            link_down(0.0002, "agg0_0", "edge0_0"),
            link_up(0.0006, "agg0_0", "edge0_0"),
        ))
        run = run_transfers(Protocol.POLYRAPTOR, QUICK, [spec], fault_schedule=schedule)
        assert run.completion_fraction == 1.0
        stats = run.fault_stats
        assert stats["events_applied"] == 2
        assert stats["links_failed"] == stats["links_restored"] == 1
        assert stats["reroutes"] > 0


class TestShardedFaultDeterminism:
    """jobs=N must reproduce jobs=1 exactly, fault counters included."""

    @pytest.fixture(scope="class")
    def sequential_and_sharded(self):
        jobs = expand_resilience_sweep(
            QUICK, intensities=(0.0, 1.0),
            protocols=(Protocol.POLYRAPTOR, Protocol.TCP), num_seeds=2,
        )
        return jobs, execute_jobs(jobs, num_workers=1), execute_jobs(jobs, num_workers=4)

    def test_jobs_with_schedules_are_picklable(self, sequential_and_sharded):
        jobs, _, _ = sequential_and_sharded
        clone = pickle.loads(pickle.dumps(jobs[-1]))
        assert clone.fault_schedule == jobs[-1].fault_schedule

    def test_per_transfer_metrics_identical(self, sequential_and_sharded):
        _, sequential, sharded = sequential_and_sharded
        for seq_run, par_run in zip(sequential, sharded):
            assert _transfer_metrics(seq_run) == _transfer_metrics(par_run)

    def test_fault_stats_identical(self, sequential_and_sharded):
        jobs, sequential, sharded = sequential_and_sharded
        saw_faults = 0
        for job, seq_run, par_run in zip(jobs, sequential, sharded):
            assert seq_run.fault_stats == par_run.fault_stats
            if job.fault_schedule:
                saw_faults += 1
                assert seq_run.fault_stats["events_applied"] == len(job.fault_schedule)
        assert saw_faults > 0

    def test_fabric_counters_identical(self, sequential_and_sharded):
        _, sequential, sharded = sequential_and_sharded
        for seq_run, par_run in zip(sequential, sharded):
            assert seq_run.events_processed == par_run.events_processed
            assert seq_run.trimmed_packets == par_run.trimmed_packets
            assert seq_run.dropped_packets == par_run.dropped_packets


class TestFaultWindow:
    def test_window_covers_service_time_not_just_arrivals(self):
        """Even a burst of simultaneous arrivals gets a window long enough
        that faults can strike transfers in flight."""
        from repro.experiments.resilience import fault_window

        burst = [
            TransferSpec(transfer_id=i, kind=TransferKind.UNICAST, client="h0",
                         peers=("h15",), size_bytes=QUICK.object_bytes, start_time=0.0)
            for i in range(4)
        ]
        _, duration = fault_window(QUICK, burst)
        ideal_service = QUICK.object_bytes * 8 / QUICK.link_rate_bps
        assert duration >= ideal_service

    def test_faults_actually_interact_with_traffic(self):
        """At CI-smoke scale, the max intensity produces fault-caused packet
        drops or a measurable FCT change -- not a no-op on a drained fabric."""
        config = ExperimentConfig(
            fattree_k=4, num_foreground_transfers=4, object_bytes=32 * KILOBYTE,
            background_fraction=0.0, max_sim_time_s=10.0,
        )
        result = run_resilience(config, intensities=(1.0,), num_seeds=2, jobs=1)
        touched = 0
        for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
            stats = result.point(protocol, 1.0).fault_stats
            touched += stats["packets_dropped_link_down"]
            touched += stats["packets_dropped_random_loss"]
            touched += stats["packets_dropped_switch_down"]
            point = result.point(protocol, 1.0)
            baseline = result.point(protocol, 0.0)
            if point.median_fct_ms != baseline.median_fct_ms \
                    or point.p90_fct_ms != baseline.p90_fct_ms:
                touched += 1
        assert touched > 0
        # Every fault in the schedule is transient, so Polyraptor must ride
        # out even the heaviest intensity (this once deadlocked: a DONE
        # control packet lost on a dead link left the sender waiting forever
        # -- receivers now retransmit DONE with capped backoff).
        assert result.point(Protocol.POLYRAPTOR, 1.0).completion_fraction == 1.0


class TestSweepExpansion:
    def test_same_schedule_for_both_protocols(self):
        jobs = expand_resilience_sweep(
            QUICK, intensities=(0.0, 0.5),
            protocols=(Protocol.POLYRAPTOR, Protocol.TCP), num_seeds=1,
        )
        by_key = {job.key: job for job in jobs}
        assert by_key[(1, "polyraptor", 0.5)].fault_schedule == \
            by_key[(1, "tcp", 0.5)].fault_schedule
        assert len(by_key[(1, "polyraptor", 0.0)].fault_schedule) == 0

    def test_same_workload_for_every_intensity(self):
        jobs = expand_resilience_sweep(
            QUICK, intensities=(0.0, 1.0), protocols=(Protocol.POLYRAPTOR,), num_seeds=1,
        )
        assert jobs[0].transfers == jobs[1].transfers

    def test_seeds_vary_workload_and_schedule(self):
        jobs = expand_resilience_sweep(
            QUICK, intensities=(1.0,), protocols=(Protocol.POLYRAPTOR,), num_seeds=2,
        )
        assert jobs[0].transfers != jobs[1].transfers
        assert jobs[0].fault_schedule != jobs[1].fault_schedule


class TestRunResilience:
    @pytest.fixture(scope="class")
    def result(self):
        return run_resilience(QUICK, intensities=(0.6,), num_seeds=1, jobs=1)

    def test_healthy_baseline_always_included(self, result):
        assert result.intensities == (0.0, 0.6)
        point = result.point(Protocol.POLYRAPTOR, 0.0)
        assert point.fault_stats is None
        assert point.fct_vs_healthy == pytest.approx(1.0)

    def test_faulted_points_carry_counters(self, result):
        for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
            stats = result.point(protocol, 0.6).fault_stats
            assert stats is not None
            assert stats["events_applied"] > 0
            assert stats["reroutes"] > 0

    def test_offered_counts_match_config(self, result):
        for (protocol, intensity), point in result.points.items():
            assert point.offered == QUICK.num_foreground_transfers
            assert 0.0 <= point.completion_fraction <= 1.0

    def test_format_produces_both_tables(self, result):
        text = format_resilience(result)
        assert "vs healthy" in text
        assert "Fault counters" in text
        assert "reroutes" in text
        assert "polyraptor" in text and "tcp" in text


class TestMergeFaultStats:
    def test_none_merges_to_none(self):
        assert merge_fault_stats([None, None]) is None
        assert merge_fault_stats([]) is None

    def test_counters_sum_and_shards_counted(self):
        one = {"events_applied": 2, "links_failed": 1, "reroutes": 10}
        two = {"events_applied": 3, "links_failed": 0, "reroutes": 5}
        merged = merge_fault_stats([one, None, two])
        assert merged["events_applied"] == 5
        assert merged["links_failed"] == 1
        assert merged["reroutes"] == 15
        assert merged["shards"] == 2

    def test_format_renders_missing_stats_as_dashes(self):
        text = format_fault_stats({"healthy": None, "faulted": {"links_failed": 2}})
        assert "healthy" in text and "-" in text
        assert "faulted" in text
