"""Tests for the incast congestion-reaction experiment.

The headline contracts (ISSUE acceptance): the incast sweep sharded over
``jobs=N`` is indistinguishable from ``jobs=1`` in every reported number --
per-transfer metrics *and* the new congestion-reaction counters -- and the
marking-off cells are byte-identical to the pre-reaction simulator (every
new feature defaults off; feature-off runs carry no ``transport_stats`` key
in their canonical snapshot at all).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.incast import (
    MARK_OFF,
    MARK_ON,
    expand_incast_sweep,
    incast_labels,
    reactive_config,
    run_incast,
)
from repro.experiments.report import (
    format_incast,
    format_transport_stats,
    merge_codec_stats,
    merge_transport_stats,
)
from repro.experiments.runner import run_transfers
from repro.utils.units import KILOBYTE

QUICK = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=6,
    object_bytes=48 * KILOBYTE,
    background_fraction=0.0,
    max_sim_time_s=20.0,
)

AXES = dict(fanins=(2, 4), response_bytes=32 * KILOBYTE)


def _point_snapshot(result):
    return {
        key: (
            point.completed,
            point.offered,
            point.median_fct_ms,
            point.p90_fct_ms,
            point.p99_fct_ms,
            point.mean_goodput_gbps,
            point.fct_vs_unmarked,
            point.transport_stats,
        )
        for key, point in result.points.items()
    }


class TestLabels:
    def test_sweep_order(self):
        assert incast_labels((4, 8)) == (
            "fanin-4/mark-off", "fanin-4/mark-on",
            "fanin-8/mark-off", "fanin-8/mark-on",
        )

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            expand_incast_sweep(QUICK, (), 1024, (Protocol.TCP,), 1)
        with pytest.raises(ValueError):
            expand_incast_sweep(QUICK, (0,), 1024, (Protocol.TCP,), 1)
        with pytest.raises(ValueError):
            expand_incast_sweep(QUICK, (2,), 0, (Protocol.TCP,), 1)
        with pytest.raises(ValueError, match="fan-in"):
            # k=4 has 16 hosts: at most 15 senders around one aggregator.
            expand_incast_sweep(QUICK, (16,), 1024, (Protocol.TCP,), 1)


class TestSweepExpansion:
    def test_workload_shared_across_cells_and_protocols(self):
        jobs = expand_incast_sweep(QUICK, (3,), 16 * KILOBYTE,
                                   (Protocol.POLYRAPTOR, Protocol.TCP), 1)
        assert len(jobs) == 4  # 1 fan-in x 2 markings x 2 protocols
        transfers = {job.transfers for job in jobs}
        assert len(transfers) == 1  # byte-identical offered traffic everywhere

    def test_marking_rides_inside_the_config(self):
        jobs = expand_incast_sweep(QUICK, (3,), 16 * KILOBYTE, (Protocol.TCP,), 1)
        by_label = {job.key[2]: job for job in jobs}
        off = by_label[f"fanin-3/{MARK_OFF}"].config
        on = by_label[f"fanin-3/{MARK_ON}"].config
        assert off == QUICK  # the historical configuration, untouched
        assert on.ecn_enabled
        assert on.polyraptor.tfrc_pacing and on.polyraptor.gray_detection

    def test_reactive_config_only_flips_reaction_knobs(self):
        on = reactive_config(QUICK)
        assert on.ecn_enabled and on.polyraptor.tfrc_pacing
        assert on.seed == QUICK.seed
        assert on.object_bytes == QUICK.object_bytes


class TestDeterminism:
    def test_jobs4_byte_identical_to_jobs1(self):
        sequential = run_incast(QUICK, num_seeds=2, jobs=1, **AXES)
        sharded = run_incast(QUICK, num_seeds=2, jobs=4, **AXES)
        assert _point_snapshot(sequential) == _point_snapshot(sharded)
        assert sequential.codec_stats == sharded.codec_stats
        assert sequential.labels == sharded.labels

    def test_mark_on_cells_carry_reaction_counters(self):
        result = run_incast(QUICK, num_seeds=1, jobs=1, **AXES)
        for fanin in AXES["fanins"]:
            off_tcp = result.point(Protocol.TCP, f"fanin-{fanin}/{MARK_OFF}")
            on_tcp = result.point(Protocol.TCP, f"fanin-{fanin}/{MARK_ON}")
            assert off_tcp.transport_stats is None
            assert on_tcp.transport_stats is not None
            # Echoes lag marks only by downstream drops: never more than marks.
            assert 0 <= on_tcp.transport_stats["ecn_echoes"] <= on_tcp.transport_stats["ecn_marks"]
            on_poly = result.point(Protocol.POLYRAPTOR, f"fanin-{fanin}/{MARK_ON}")
            assert on_poly.transport_stats is not None
            assert "rate_updates" in on_poly.transport_stats
        rendered = format_incast(result)
        assert "mark-on" in rendered and "vs mark-off" in rendered


class TestMarkOffIsLegacy:
    def test_mark_off_cell_equals_direct_legacy_run(self):
        """A sweep's mark-off cell is the pre-reaction simulator, byte-for-byte."""
        jobs = expand_incast_sweep(QUICK, (4,), 32 * KILOBYTE, (Protocol.TCP,), 1)
        off_job = next(job for job in jobs if job.key[2].endswith(MARK_OFF))
        direct = run_transfers(off_job.protocol, off_job.config, list(off_job.transfers))
        # Every reactive feature is off, so the run carries no transport
        # stats and its canonical snapshot has no such key -- the exact
        # shape (and fingerprint) the pre-reaction simulator produced.
        assert direct.transport_stats is None
        assert "transport_stats" not in direct.canonical_dict()

    def test_default_config_runs_have_no_transport_stats(self):
        for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
            jobs = expand_incast_sweep(QUICK, (2,), 16 * KILOBYTE, (protocol,), 1)
            off_job = jobs[0]
            run = run_transfers(off_job.protocol, off_job.config, list(off_job.transfers))
            assert run.transport_stats is None

    def test_mark_on_snapshot_includes_transport_stats(self):
        jobs = expand_incast_sweep(QUICK, (4,), 32 * KILOBYTE, (Protocol.TCP,), 1)
        on_job = next(job for job in jobs if job.key[2].endswith(MARK_ON))
        run = run_transfers(on_job.protocol, on_job.config, list(on_job.transfers))
        snapshot = run.canonical_dict()
        assert snapshot["transport_stats"] == run.transport_stats
        assert run.transport_stats["ecn_marks"] >= 0


class TestMergeRoundTrip:
    def test_transport_stats_merge_sums_and_counts_shards(self):
        merged = merge_transport_stats([
            {"ecn_marks": 3, "rate_updates": 5, "gray_detected": 1},
            None,  # a feature-off shard contributes nothing
            {"ecn_marks": 2, "rate_updates": 1, "gray_detected": 0},
        ])
        assert merged == {
            "ecn_marks": 5, "rate_updates": 6, "gray_detected": 1, "shards": 2,
        }

    def test_transport_stats_merge_keeps_unknown_counters(self):
        # The stale-counter trap: a counter added later must survive the
        # sharded merge, or --jobs N diverges from --jobs 1.
        merged = merge_transport_stats([
            {"ecn_marks": 1, "brand_new_counter": 7},
            {"ecn_marks": 1, "brand_new_counter": 2},
        ])
        assert merged["brand_new_counter"] == 9

    def test_transport_stats_merge_none_when_all_absent(self):
        assert merge_transport_stats([None, None]) is None
        assert merge_transport_stats([]) is None

    def test_codec_stats_merge_keeps_unknown_counters(self):
        base = {
            "backend": "planned", "kernel": "blocked",
            "blocks_encoded": 1, "blocks_decoded": 1,
            "plan_cache": {"hits": 1, "misses": 1},
            "decode_plan_cache": {"hits": 0, "misses": 0},
            "decode_plan_retries": 0, "cached_plans": 2,
            "brand_new_counter": 3,
        }
        merged = merge_codec_stats([base, dict(base)])
        assert merged["brand_new_counter"] == 6
        assert merged["blocks_encoded"] == 2
        assert merged["shards"] == 2

    def test_merged_equals_single_run_shape(self):
        single = {"ecn_marks": 4, "ce_received": 4, "rate_updates": 2, "gray_detected": 0}
        merged = merge_transport_stats([single])
        round_tripped = merge_transport_stats([merged])
        # Idempotent apart from the shards bookkeeping.
        assert {k: v for k, v in round_tripped.items() if k != "shards"} == single

    def test_format_transport_stats_renders_none_rows(self):
        rendered = format_transport_stats({"off": None, "on": {"ecn_marks": 2}})
        assert "off" in rendered and "-" in rendered and "2" in rendered
