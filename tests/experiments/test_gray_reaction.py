"""Seeded end-to-end regression: the reaction loop under gray failure.

The ISSUE acceptance scenario: with ``gray_failure_schedule`` dropping 10%
of packets across half the fabric links (routing never reacts -- the gray
signature), a TFRC-paced Polyraptor transfer must still complete with
bounded FCT inflation against its own healthy baseline, and the historical
fixed-rate sender must not starve either (the fountain code absorbs loss;
pacing changes *when* symbols flow, not *whether* the object decodes).
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.incast import reactive_config
from repro.experiments.runner import run_transfers
from repro.faults.schedule import gray_failure_schedule
from repro.network.topology import FatTreeTopology
from repro.utils.units import KILOBYTE
from repro.workloads.spec import TransferKind, TransferSpec

GRAY_LOSS = 0.10
#: Generous ceiling on FCT inflation under 10% loss on *every* fabric link
#: (so ~30%+ compounded per 4-hop path, each direction -- pulls die too).
#: Measured inflation is ~38x; a transport that degenerates into
#: timeout-driven crawling lands orders of magnitude above this bound.
MAX_FCT_INFLATION = 75.0

#: The gray builder smears loss onsets into [0.05, 0.30] x duration and
#: clears into [0.70, 0.95] x duration; with a 1 s window every affected
#: link is lossy throughout [0.30, 0.70], so the (sub-millisecond) transfer
#: starts squarely inside the loss regime.
GRAY_WINDOW_S = 1.0
TRANSFER_START_S = 0.4

CONFIG = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=1,
    object_bytes=64 * KILOBYTE,
    background_fraction=0.0,
    max_sim_time_s=20.0,
)


def _workload(topology):
    hosts = topology.hosts
    return [
        TransferSpec(
            transfer_id=1,
            kind=TransferKind.UNICAST,
            client=hosts[0],
            peers=(hosts[-1],),
            size_bytes=CONFIG.object_bytes,
            start_time=TRANSFER_START_S,
            label="foreground",
        )
    ]


def _gray_schedule(topology):
    return gray_failure_schedule(
        topology,
        random.Random(7),
        loss_probability=GRAY_LOSS,
        affected_fraction=1.0,
        start_time=0.0,
        duration=GRAY_WINDOW_S,
    )


def _median_fct(run):
    records = [r for r in run.registry.records if r.completed]
    assert records, "transfer did not complete"
    return min(r.flow_completion_time for r in records)


class TestGrayReaction:
    @pytest.fixture(scope="class")
    def topology(self):
        return FatTreeTopology(CONFIG.fattree_k)

    def test_tfrc_paced_transfer_bounded_under_gray_loss(self, topology):
        reactive = reactive_config(CONFIG)
        transfers = _workload(topology)
        healthy = run_transfers(
            Protocol.POLYRAPTOR, reactive, transfers, topology=topology
        )
        gray = run_transfers(
            Protocol.POLYRAPTOR, reactive, transfers, topology=topology,
            fault_schedule=_gray_schedule(topology),
        )
        assert healthy.completion_fraction == 1.0
        assert gray.completion_fraction == 1.0
        inflation = _median_fct(gray) / _median_fct(healthy)
        assert inflation < MAX_FCT_INFLATION
        # The reactive machinery actually ran under loss.
        assert gray.transport_stats is not None
        assert gray.fault_stats["packets_dropped_random_loss"] > 0

    def test_fixed_rate_transfer_does_not_starve_under_gray_loss(self, topology):
        transfers = _workload(topology)
        gray = run_transfers(
            Protocol.POLYRAPTOR, CONFIG, transfers, topology=topology,
            fault_schedule=_gray_schedule(topology),
        )
        # The historical sender (no TFRC, no gray detection) keeps pulling
        # symbols through the lossy fabric and still decodes the object.
        assert gray.completion_fraction == 1.0
        assert gray.transport_stats is None  # every reactive feature off

    def test_same_schedule_same_result(self, topology):
        """The gray regression itself is seeded: two runs are byte-identical."""
        reactive = reactive_config(CONFIG)
        transfers = _workload(topology)
        first = run_transfers(
            Protocol.POLYRAPTOR, reactive, transfers, topology=topology,
            fault_schedule=_gray_schedule(topology),
        )
        second = run_transfers(
            Protocol.POLYRAPTOR, reactive, transfers, topology=topology,
            fault_schedule=_gray_schedule(topology),
        )
        assert first.canonical_dict() == second.canonical_dict()
