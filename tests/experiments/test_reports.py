"""Tests for the text rendering of figure results."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1a import Figure1aResult
from repro.experiments.figure1c import Figure1cResult, IncastPoint
from repro.experiments.metrics import SeriesSummary
from repro.experiments.report import format_figure1c, format_rank_figure


def _fake_rank_result() -> Figure1aResult:
    result = Figure1aResult(config=ExperimentConfig())
    for label, mean in (("1 Replica RQ", 0.8), ("1 Replica TCP", 0.5)):
        result.series[label] = [(0, mean - 0.1), (1, mean + 0.1)]
        result.summaries[label] = SeriesSummary.from_goodputs(label, [mean - 0.1, mean + 0.1])
    return result


class TestRankFigureFormatting:
    def test_contains_title_and_all_series(self):
        text = format_rank_figure(_fake_rank_result(), "Figure 1a")
        assert text.startswith("Figure 1a")
        assert "1 Replica RQ" in text
        assert "1 Replica TCP" in text

    def test_contains_quantile_columns(self):
        text = format_rank_figure(_fake_rank_result(), "t")
        for column in ("p10 Gbps", "median Gbps", "mean Gbps", "p90 Gbps"):
            assert column in text

    def test_values_rendered_with_three_decimals(self):
        text = format_rank_figure(_fake_rank_result(), "t")
        assert "0.800" in text  # the mean of the RQ series


class TestFigure1cFormatting:
    def test_rows_per_point(self):
        result = Figure1cResult(config=ExperimentConfig())
        result.series["RQ 256KB"] = [
            IncastPoint(num_senders=1, mean_goodput_gbps=0.9, ci95_gbps=0.01, samples=(0.9,)),
            IncastPoint(num_senders=8, mean_goodput_gbps=0.92, ci95_gbps=0.02, samples=(0.92,)),
        ]
        text = format_figure1c(result)
        assert text.count("RQ 256KB") == 2
        assert "+/-0.010" in text
        assert "senders" in text
