"""Tests for the heavy-tailed workload-mix extension experiment."""

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.workload_mix import format_workload_mix, run_workload_mix
from repro.utils.units import KILOBYTE


SMALL = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=8,
    object_bytes=96 * KILOBYTE,
    offered_load=0.15,
    max_sim_time_s=30.0,
)


class TestWorkloadMix:
    @pytest.fixture(scope="class")
    def results(self):
        return run_workload_mix(
            SMALL,
            num_transfers=16,
            min_bytes=20_000,
            max_bytes=500_000,
            short_threshold_bytes=60_000,
        )

    def test_both_protocols_reported(self, results):
        assert set(results) == {Protocol.POLYRAPTOR, Protocol.TCP}

    def test_everything_completes_under_polyraptor(self, results):
        assert results[Protocol.POLYRAPTOR].completion_fraction == 1.0

    def test_short_flow_fct_is_sub_millisecond_scale(self, results):
        # Short flows on a lightly loaded 1 Gbps fabric finish in at most a few ms.
        assert results[Protocol.POLYRAPTOR].short_median_fct_ms < 5.0

    def test_long_flows_achieve_reasonable_goodput(self, results):
        assert results[Protocol.POLYRAPTOR].long_median_goodput_gbps > 0.3

    def test_polyraptor_short_flows_not_slower_than_tcp(self, results):
        # The systematic prefix means short, loss-free transfers carry no
        # decoding penalty, so Polyraptor's short-flow latency should be in
        # the same ballpark as TCP's (or better under contention).
        rq = results[Protocol.POLYRAPTOR].short_median_fct_ms
        tcp = results[Protocol.TCP].short_median_fct_ms
        assert rq <= 2.0 * tcp

    def test_format_renders_both_rows(self, results):
        text = format_workload_mix(results)
        assert "polyraptor" in text
        assert "tcp" in text
        assert "short median FCT ms" in text
