"""Tests for experiment configuration, metrics and report formatting."""

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.metrics import (
    SeriesSummary,
    aggregate_goodput_gbps,
    goodput_rank_series,
    mean_with_confidence,
)
from repro.network.routing import RoutingMode
from repro.transport.base import TransferRegistry
from repro.utils.units import GBPS, MEGABYTE


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.num_hosts == 16
        assert config.arrival_rate_per_second > 0

    def test_num_hosts_formula(self):
        assert ExperimentConfig(fattree_k=10).num_hosts == 250

    def test_background_count_fraction(self):
        config = ExperimentConfig(num_foreground_transfers=80, background_fraction=0.2)
        total = 80 + config.num_background_transfers
        assert config.num_background_transfers / total == pytest.approx(0.2, abs=0.02)

    def test_zero_background(self):
        assert ExperimentConfig(background_fraction=0.0).num_background_transfers == 0

    def test_paper_scale_matches_caption(self):
        config = ExperimentConfig.paper_scale()
        assert config.num_hosts == 250
        assert config.object_bytes == 4 * MEGABYTE
        assert config.link_rate_bps == 1 * GBPS
        # lambda = 2560 in the paper; the load-derived rate must be close.
        assert config.arrival_rate_per_second == pytest.approx(2560, rel=0.05)

    def test_network_config_per_protocol(self):
        config = ExperimentConfig()
        polyraptor = config.network_config(Protocol.POLYRAPTOR)
        tcp = config.network_config(Protocol.TCP)
        assert polyraptor.switch_queue == "trimming"
        assert polyraptor.routing_mode is RoutingMode.PACKET_SPRAY
        assert tcp.switch_queue == "droptail"
        assert tcp.routing_mode is RoutingMode.ECMP_FLOW

    def test_with_seed(self):
        config = ExperimentConfig(seed=1)
        assert config.with_seed(9).seed == 9
        assert config.seed == 1

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            ExperimentConfig(fattree_k=5)


class TestMetrics:
    def _registry(self):
        registry = TransferRegistry()
        for transfer_id, (goodput_label, duration) in enumerate(
            [("foreground", 1.0), ("foreground", 2.0), ("background", 1.0)]
        ):
            registry.record_start(transfer_id, 1_000_000, 0.0, label=goodput_label)
            registry.record_completion(transfer_id, duration)
        return registry

    def test_rank_series_sorted(self):
        series = goodput_rank_series(self._registry(), "foreground")
        assert len(series) == 2
        assert series[0][1] <= series[1][1]
        assert [rank for rank, _ in series] == [0, 1]

    def test_aggregate_goodput(self):
        registry = self._registry()
        # 3 MB delivered over 2 seconds = 12 Mbit / 2 s = 0.012 Gbps.
        assert aggregate_goodput_gbps(registry) == pytest.approx(0.012)

    def test_aggregate_goodput_empty(self):
        assert aggregate_goodput_gbps(TransferRegistry()) == 0.0

    def test_series_summary(self):
        summary = SeriesSummary.from_goodputs("x", [0.1, 0.5, 0.9])
        assert summary.count == 3
        assert summary.mean_gbps == pytest.approx(0.5)
        assert summary.min_gbps == 0.1
        assert summary.max_gbps == 0.9

    def test_series_summary_empty_raises(self):
        with pytest.raises(ValueError):
            SeriesSummary.from_goodputs("x", [])

    def test_mean_with_confidence(self):
        mean, ci = mean_with_confidence([1.0, 1.0, 1.0])
        assert mean == 1.0
        assert ci == pytest.approx(0.0)


class TestReportFormatting:
    def test_format_overhead_table(self):
        from repro.experiments.ablations import OverheadPoint
        from repro.experiments.report import format_overhead

        text = format_overhead([OverheadPoint(overhead=2, trials=10, failures=0)])
        assert "overhead symbols" in text
        assert "0.000" in text

    def test_format_ablation_table(self):
        from repro.experiments.ablations import AblationPoint
        from repro.experiments.report import format_ablation

        text = format_ablation(
            [AblationPoint(label="trimming", goodput_gbps=0.9, trimmed_packets=5)],
            "A1",
        )
        assert "A1" in text and "trimming" in text and "0.900" in text
