"""Tests for the hotspot extension experiment and the command-line interface."""

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.hotspot import format_hotspot, run_hotspot_experiment
from repro.utils.units import KILOBYTE


SMALL = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=8,
    object_bytes=96 * KILOBYTE,
    offered_load=0.15,
    max_sim_time_s=30.0,
)


class TestHotspotExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        return run_hotspot_experiment(
            SMALL, num_measured=6, num_aggressors=4, aggressor_bytes=1_000_000
        )

    def test_both_protocols_reported(self, results):
        assert set(results) == {Protocol.POLYRAPTOR, Protocol.TCP}

    def test_measured_flows_complete_under_polyraptor(self, results):
        assert results[Protocol.POLYRAPTOR].completion_fraction == 1.0

    def test_polyraptor_not_worse_than_tcp_under_hotspot(self, results):
        rq = results[Protocol.POLYRAPTOR]
        tcp = results[Protocol.TCP]
        assert rq.mean_goodput_gbps >= tcp.mean_goodput_gbps

    def test_spraying_protects_the_worst_flow(self, results):
        rq = results[Protocol.POLYRAPTOR]
        tcp = results[Protocol.TCP]
        # Per-flow ECMP can pin an unlucky TCP flow to a hot path; spraying
        # spreads every Polyraptor session over all paths, so its worst
        # measured flow should be no slower than TCP's worst measured flow.
        assert rq.p10_goodput_gbps >= tcp.p10_goodput_gbps

    def test_format_hotspot_renders_all_protocols(self, results):
        text = format_hotspot(results)
        assert "polyraptor" in text
        assert "tcp" in text
        assert "mean Gbps" in text


class TestCli:
    def test_parser_knows_all_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("figure1a", "figure1b", "figure1c", "ablations", "hotspot", "all"):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.handler)

    def test_parser_rejects_unknown_command(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_cli_figure1c_smoke(self, capsys):
        from repro.cli import main

        exit_code = main([
            "figure1c",
            "--sessions", "4",
            "--object-kb", "64",
            "--senders", "2",
            "--response-kb", "64",
            "--seeds", "1",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "senders" in captured.out
        assert "RQ 64KB" in captured.out
        assert "TCP 64KB" in captured.out

    def test_cli_custom_fabric_arguments(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["figure1a", "--fattree-k", "6", "--sessions", "10", "--load", "0.1"]
        )
        assert args.fattree_k == 6
        assert args.sessions == 10
        assert args.load == pytest.approx(0.1)

    def test_cli_kernel_flag_threads_into_config(self):
        from repro.cli import _build_config, build_parser

        args = build_parser().parse_args(["figure1a", "--kernel", "blocked"])
        assert _build_config(args).polyraptor.codec_kernel == "blocked"
        # Default stays auto; bogus names are rejected at parse time.
        assert build_parser().parse_args(["mix"]).kernel == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "--kernel", "fortran"])

    def test_cli_paper_scale_selects_paper_fabric(self):
        from repro.cli import _build_config, build_parser
        from repro.experiments.config import ExperimentConfig

        args = build_parser().parse_args(
            ["resilience", "--paper-scale", "--seed", "7", "--kernel", "numpy"]
        )
        config = _build_config(args)
        preset = ExperimentConfig.paper_fabric()
        assert config.fattree_k == 10
        assert config.num_hosts == 250
        assert config.num_foreground_transfers == preset.num_foreground_transfers
        assert config.offered_load == pytest.approx(preset.offered_load)
        assert config.seed == 7
        assert config.polyraptor.codec_kernel == "numpy"
