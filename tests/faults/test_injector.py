"""Tests for the fault injector driving a live network.

Each test builds a small fat-tree, arms a hand-written schedule and checks
that the dynamic hooks fire at the scheduled times: packets die on dead
links (including in flight), routing recomputes around failures and restores
exactly on recovery, degraded ports slow down, lossy links drop at the
seeded rate, failed switches black-hole, and slowed hosts serialise slower.
"""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    FaultSchedule,
    host_slowdown,
    link_degrade,
    link_down,
    link_loss,
    link_up,
    switch_down,
    switch_up,
)
from repro.network.network import Network, NetworkConfig
from repro.network.packet import Packet
from repro.network.routing import RoutingMode
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append((self.sim.now, packet))


def build_network(seed=1, **config_overrides):
    sim = Simulator()
    topology = FatTreeTopology(4)
    network = Network(sim, topology, NetworkConfig(**config_overrides), RandomStreams(seed))
    return sim, network


def arm(sim, network, *events):
    injector = FaultInjector(sim, network, FaultSchedule.ordered(events))
    injector.start()
    return injector


def send_unicast(network, src_name, dst_name, size=1500):
    src = network.host(src_name)
    src.send(
        Packet(protocol="test", src=src.node_id, dst=network.host_id(dst_name), size_bytes=size)
    )


class TestLinkFaults:
    def test_downed_access_link_unreaches_the_host(self):
        """Routing recomputes around a dead access link: no route, no delivery."""
        sim, network = build_network()
        sink = Sink(sim)
        network.host("h1").register_protocol("test", sink)
        rack = network.topology.host_rack("h1")
        arm(sim, network, link_down(0.0, rack, "h1"))
        sim.schedule_at(0.001, send_unicast, network, "h0", "h1")
        sim.run()
        assert sink.packets == []
        assert network.switches[rack].dropped_no_route >= 1

    def test_in_flight_packet_dies_with_the_link(self):
        sim, network = build_network()
        sink = Sink(sim)
        network.host("h1").register_protocol("test", sink)
        rack = network.topology.host_rack("h1")
        link = network.link_between(rack, "h1")
        # The link dies mid-propagation: the packet was carried before the
        # fault but must never arrive.
        packet = Packet(protocol="test", src=0, dst=network.host_id("h1"), size_bytes=1500)
        sim.schedule_at(0.001, link.carry, packet)
        arm(sim, network, link_down(0.001 + link.delay_s / 2, rack, "h1"))
        sim.run()
        assert sink.packets == []
        assert link.dropped_link_down == 1

    def test_flap_faster_than_propagation_still_kills_in_flight_packet(self):
        """A down/up cycle during a packet's flight drops it even though the
        wire is back up at delivery time."""
        sim, network = build_network()
        sink = Sink(sim)
        network.host("h1").register_protocol("test", sink)
        rack = network.topology.host_rack("h1")
        link = network.link_between(rack, "h1")
        packet = Packet(protocol="test", src=0, dst=network.host_id("h1"), size_bytes=1500)
        sim.schedule_at(0.001, link.carry, packet)
        arm(
            sim, network,
            link_down(0.001 + link.delay_s / 3, rack, "h1"),
            link_up(0.001 + link.delay_s / 2, rack, "h1"),
        )
        sim.run()
        assert sink.packets == []
        assert link.dropped_link_down == 1
        # The wire works again for traffic sent after the flap.
        sim.schedule_at(0.01, send_unicast, network, "h0", "h1")
        sim.run()
        assert len(sink.packets) == 1

    def test_link_down_then_up_delivers_again(self):
        sim, network = build_network()
        sink = Sink(sim)
        network.host("h1").register_protocol("test", sink)
        rack = network.topology.host_rack("h1")
        arm(sim, network, link_down(0.0, rack, "h1"), link_up(0.01, rack, "h1"))
        sim.schedule_at(0.02, send_unicast, network, "h0", "h1")
        sim.run()
        assert len(sink.packets) == 1

    def test_degrade_halves_the_serialisation_rate(self):
        sim, network = build_network()
        rack = network.topology.host_rack("h1")
        port = network.switches[rack].port_to("h1")
        nominal = port.rate_bps
        arm(sim, network, link_degrade(0.0, rack, "h1", 0.5))
        sim.run()
        assert port.rate_bps == pytest.approx(nominal / 2)
        network.degrade_link(rack, "h1", 1.0)
        assert port.rate_bps == pytest.approx(nominal)

    def test_certain_loss_drops_everything_and_counts(self):
        sim, network = build_network()
        sink = Sink(sim)
        network.host("h1").register_protocol("test", sink)
        rack = network.topology.host_rack("h1")
        arm(sim, network, link_loss(0.0, rack, "h1", 1.0))
        for index in range(5):
            sim.schedule_at(0.001 * (index + 1), send_unicast, network, "h0", "h1")
        sim.run()
        assert sink.packets == []
        assert network.total_dropped_random_loss == 5

    def test_loss_draws_are_seeded(self):
        """Two equally seeded networks lose exactly the same packets."""
        outcomes = []
        for _ in range(2):
            sim, network = build_network(seed=42)
            sink = Sink(sim)
            network.host("h1").register_protocol("test", sink)
            rack = network.topology.host_rack("h1")
            arm(sim, network, link_loss(0.0, rack, "h1", 0.5))
            for index in range(20):
                sim.schedule_at(0.001 * (index + 1), send_unicast, network, "h0", "h1")
            sim.run()
            outcomes.append(tuple(now for now, _ in sink.packets))
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 20

    def test_unknown_link_rejected(self):
        _, network = build_network()
        with pytest.raises(KeyError):
            network.set_link_state("h0", "h15", up=False)


class TestRoutingRecompute:
    def test_link_down_reroutes_and_up_restores_pre_failure_table(self):
        sim, network = build_network()
        rack = network.topology.host_rack("h0")
        before = {name: sw.unicast_next_hops() for name, sw in network.switches.items()}
        uplink = sorted(
            agg for agg in network.topology.graph.neighbors(rack) if agg.startswith("agg")
        )[0]

        injector = arm(
            sim, network, link_down(0.001, rack, uplink), link_up(0.002, rack, uplink)
        )
        sim.run(until=0.0015)
        during = network.switches[rack].unicast_next_hops()
        assert during != before[rack]
        assert all(uplink not in hops for hops in during.values())
        assert network.failed_edges == frozenset({frozenset((rack, uplink))})

        sim.run()
        after = {name: sw.unicast_next_hops() for name, sw in network.switches.items()}
        assert after == before
        assert network.failed_edges == frozenset()
        assert injector.reroutes > 0

    def test_traffic_flows_around_a_failed_aggregation_switch(self):
        sim, network = build_network()
        sink = Sink(sim)
        network.host("h15").register_protocol("test", sink)
        victim = "agg0_0"
        arm(sim, network, switch_down(0.0, victim))
        for index in range(8):
            sim.schedule_at(0.001 * (index + 1), send_unicast, network, "h0", "h15")
        sim.run()
        assert len(sink.packets) == 8  # everything rerouted via agg0_1

    def test_failed_switch_black_holes_before_recompute(self):
        sim, network = build_network()
        victim = "agg0_0"
        switch = network.switches[victim]
        switch.set_failed(True)  # direct hook: no recompute has happened yet
        switch.receive(Packet(protocol="test", src=0, dst=5, size_bytes=1500))
        assert switch.dropped_switch_down == 1
        assert network.total_dropped_switch_down == 1

    def test_same_time_compound_fault_recomputes_once(self):
        """A batch of topology events pays one rebuild: reroutes counts the
        combined failure's table diff, not per-event transients."""
        rack = FatTreeTopology(4).host_rack("h0")

        sim, network = build_network()
        injector = arm(
            sim, network,
            link_down(0.001, rack, "agg0_0"),
            switch_down(0.001, "core0"),
        )
        sim.run()
        batched = injector.reroutes

        reference_sim, reference = build_network()
        reference.set_link_state(rack, "agg0_0", up=False)
        reference.set_switch_failed("core0", failed=True)
        assert batched == reference.recompute_routes()

    def test_switch_down_then_up_restores_table(self):
        sim, network = build_network()
        before = {name: sw.unicast_next_hops() for name, sw in network.switches.items()}
        injector = arm(
            sim, network, switch_down(0.001, "core0"), switch_up(0.002, "core0")
        )
        sim.run()
        after = {name: sw.unicast_next_hops() for name, sw in network.switches.items()}
        assert after == before
        assert injector.switches_failed == injector.switches_restored == 1


class TestMulticastRebuild:
    def test_tree_reroutes_around_dead_link_and_still_delivers(self):
        sim, network = build_network()
        sinks = {}
        for name in ("h8", "h15"):
            sinks[name] = Sink(sim)
            network.host(name).register_protocol("test", sinks[name])
        group = network.create_multicast_group(9, "h0", ["h8", "h15"])
        victim = next(
            (a, b) for a, b in group.tree_edges
            if not a.startswith("h") and not b.startswith("h")
        )
        network.set_link_state(*victim, up=False)
        network.recompute_routes()
        rebuilt = network.multicast_group(9)
        assert frozenset(victim) not in {frozenset(e) for e in rebuilt.tree_edges}

        src = network.host("h0")
        src.send(Packet(protocol="test", src=src.node_id, dst=None,
                        multicast_group=9, size_bytes=1500))
        sim.run()
        assert all(len(sink.packets) == 1 for sink in sinks.values())

    def test_unreachable_receiver_keeps_old_tree(self):
        sim, network = build_network()
        group = network.create_multicast_group(9, "h0", ["h8"])
        old_edges = group.tree_edges
        rack = network.topology.host_rack("h8")
        network.set_link_state(rack, "h8", up=False)  # h8 unreachable
        network.recompute_routes()
        assert network.multicast_group(9).tree_edges == old_edges


class TestHostSlowdown:
    def test_nic_rate_degrades_and_recovers(self):
        sim, network = build_network()
        nic = network.host("h3").nic
        nominal = nic.rate_bps
        arm(
            sim, network,
            host_slowdown(0.001, "h3", 0.25),
            host_slowdown(0.002, "h3", 1.0),
        )
        sim.run(until=0.0015)
        assert nic.rate_bps == pytest.approx(nominal / 4)
        sim.run()
        assert nic.rate_bps == pytest.approx(nominal)


class TestInjectorAccounting:
    def test_start_is_once_only(self):
        sim, network = build_network()
        injector = arm(sim, network, switch_down(0.0, "core0"))
        with pytest.raises(RuntimeError):
            injector.start()

    def test_stats_dict_shape_and_counts(self):
        sim, network = build_network()
        rack = network.topology.host_rack("h0")
        uplink = sorted(
            agg for agg in network.topology.graph.neighbors(rack) if agg.startswith("agg")
        )[0]
        injector = arm(
            sim, network,
            link_down(0.001, rack, uplink),
            link_up(0.002, rack, uplink),
            link_degrade(0.001, rack, "h0", 0.5),
            link_loss(0.001, rack, "h1", 0.2),
            switch_down(0.003, "core0"),
            switch_up(0.004, "core0"),
            host_slowdown(0.001, "h2", 0.5),
        )
        sim.run()
        stats = injector.stats_dict()
        assert stats["events_scheduled"] == stats["events_applied"] == 7
        assert stats["links_failed"] == stats["links_restored"] == 1
        assert stats["links_degraded"] == 1
        assert stats["links_lossy"] == 1
        assert stats["switches_failed"] == stats["switches_restored"] == 1
        assert stats["hosts_slowed"] == 1
        assert stats["reroutes"] > 0
        for key in ("packets_dropped_link_down", "packets_dropped_random_loss",
                    "packets_dropped_switch_down"):
            assert stats[key] == 0  # no traffic was offered

    def test_events_beyond_the_time_cap_do_not_apply(self):
        sim, network = build_network()
        injector = arm(sim, network, switch_down(5.0, "core0"))
        sim.run(until=1.0)
        assert injector.events_applied == 0
        assert not network.switches["core0"].failed
