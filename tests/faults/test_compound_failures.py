"""Routing-rebuild coverage under *compound* failures.

PR 3's tests exercised single faults; these pin down the harder cases the
correlated failure models produce: a switch and one of its member links
failing in the same instant (the SRLG shape), recovery restoring the exact
pre-failure unicast tables and multicast trees, and a multicast tree being
rebuilt mid-transfer while symbols are in flight.
"""

import random

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.runner import run_transfers
from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    FaultSchedule,
    link_down,
    link_up,
    rack_power_schedule,
    shared_risk_group_schedule,
    switch_down,
    switch_up,
)
from repro.network.network import Network
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.utils.units import KILOBYTE
from repro.workloads.spec import TransferKind, TransferSpec

QUICK = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=4,
    object_bytes=48 * KILOBYTE,
    background_fraction=0.0,
    max_sim_time_s=20.0,
)


def build_network(seed=1):
    sim = Simulator()
    topology = FatTreeTopology(4)
    network = Network(sim, topology, streams=RandomStreams(seed))
    return sim, network


def full_tables(network):
    return {name: sw.unicast_next_hops() for name, sw in network.switches.items()}


def arm(sim, network, schedule):
    injector = FaultInjector(sim, network, schedule)
    injector.start()
    return injector


class TestSwitchPlusMemberLink:
    """A switch and one of its own links dying together (the SRLG shape)."""

    def test_single_recompute_and_consistent_tables(self):
        sim, network = build_network()
        schedule = FaultSchedule.ordered((
            switch_down(0.001, "agg0_0"),
            link_down(0.001, "agg0_0", "core0"),
            link_down(0.001, "agg0_0", "edge0_0"),
        ))
        injector = arm(sim, network, schedule)
        sim.run()
        assert injector.recomputes_requested == 1
        assert injector.route_installs == 1
        # No surviving switch routes via the dead aggregation switch.
        for name, table in full_tables(network).items():
            if name == "agg0_0":
                continue
            for hops in table.values():
                assert "agg0_0" not in hops

    def test_recovery_restores_exact_pre_failure_state(self):
        sim, network = build_network()
        before_tables = full_tables(network)
        group = network.create_multicast_group(5, "h0", ["h6", "h12"])
        before_tree = group.tree_edges
        before_group_ports = {
            name: sw.group_ports(5) for name, sw in network.switches.items()
        }
        schedule = FaultSchedule.ordered((
            switch_down(0.001, "agg0_0"),
            link_down(0.001, "agg0_1", "edge0_0"),
            link_up(0.002, "agg0_1", "edge0_0"),
            switch_up(0.002, "agg0_0"),
        ))
        injector = arm(sim, network, schedule)
        sim.run()
        after = full_tables(network)
        for name in before_tables:
            assert after[name] == before_tables[name], f"table drift on {name}"
        assert network.multicast_group(5).tree_edges == before_tree
        assert {
            name: sw.group_ports(5) for name, sw in network.switches.items()
        } == before_group_ports
        assert injector.recomputes_requested == 2
        assert network.failed_edges == frozenset()
        assert network.failed_switches == frozenset()

    def test_srlg_builder_recovery_restores_tables(self):
        sim, network = build_network()
        before = full_tables(network)
        schedule = shared_risk_group_schedule(
            network.topology, random.Random(3), group_size=3,
            start_time=0.0, duration=0.01,
        )
        arm(sim, network, schedule)
        sim.run()
        assert full_tables(network) == before
        # Each group wire flapped exactly once (down + recovery), both
        # directions of the full-duplex link.
        targets = {e.target for e in schedule.events if e.kind.value == "link_down"}
        for name_a, name_b in targets:
            assert network.link_between(name_a, name_b).flaps == 1
            assert network.link_between(name_b, name_a).flaps == 1

    def test_rack_power_recovery_restores_tables(self):
        sim, network = build_network()
        before = full_tables(network)
        schedule = rack_power_schedule(
            network.topology, random.Random(4), start_time=0.0, duration=0.01
        )
        injector = arm(sim, network, schedule)
        sim.run()
        assert full_tables(network) == before
        # Down batch (switch + host links) and recovery batch: one
        # recompute each, not one per event.
        assert injector.recomputes_requested == 2


class TestMulticastRebuildMidTransfer:
    """A replicated push survives its tree being rebuilt while in flight."""

    def _replicate_spec(self):
        return TransferSpec(
            transfer_id=1, kind=TransferKind.REPLICATE, client="h0",
            peers=("h6", "h12"), size_bytes=QUICK.object_bytes,
            start_time=0.0, label="foreground",
        )

    def test_tree_edge_dies_mid_transfer_and_transfer_completes(self):
        # ~48 KB at 1 Gbps needs ~0.4 ms; kill a fabric link at 0.15 ms --
        # squarely mid-transfer -- and restore it before the run ends.
        schedule = FaultSchedule.ordered((
            link_down(0.00015, "agg0_0", "edge0_0"),
            link_down(0.00015, "agg0_1", "edge0_0"),  # both rack uplinks...
            link_up(0.0008, "agg0_0", "edge0_0"),
            link_up(0.0008, "agg0_1", "edge0_0"),
        ))
        run = run_transfers(
            Protocol.POLYRAPTOR, QUICK, [self._replicate_spec()],
            fault_schedule=schedule,
        )
        assert run.completion_fraction == 1.0
        assert run.fault_stats["reroutes"] > 0
        assert run.fault_stats["route_installs"] == run.fault_stats["recomputes_requested"]

    def test_rack_power_mid_transfer_recovers(self):
        """The receivers' own rack loses power mid-transfer; the push must
        ride the recovery (symbols lost in the window are repaired)."""
        topology = FatTreeTopology(QUICK.fattree_k)
        # h6 lives in pod 1 -- fail that rack's ToR while the push runs.
        rack = topology.host_rack("h6")
        hosts = sorted(
            n for n in topology.graph.neighbors(rack)
            if topology.roles[n].value == "host"
        )
        schedule = FaultSchedule.ordered(
            tuple([switch_down(0.00015, rack)]
                  + [link_down(0.00015, rack, h) for h in hosts]
                  + [switch_up(0.0008, rack)]
                  + [link_up(0.0008, rack, h) for h in hosts])
        )
        run = run_transfers(
            Protocol.POLYRAPTOR, QUICK, [self._replicate_spec()],
            fault_schedule=schedule,
        )
        assert run.completion_fraction == 1.0
        stats = run.fault_stats
        assert stats["switches_failed"] == stats["switches_restored"] == 1
        assert stats["links_failed"] == len(hosts)


class TestStartupInsideDeadRack:
    """A sender whose rack is dark at session start must still deliver.

    The receiver-side stall timer only exists once the receiver has learned
    of the session; if the whole initial window dies on the sender's dead
    access link, only the sender's startup probing (capped-backoff unicast
    re-probes) can unblock the transfer.  This deadlocked before the
    startup_retry_limit fix: the rack_power model exposed it.
    """

    def test_transfer_started_during_rack_outage_completes(self):
        from repro.experiments.runner import build_environment, offer_transfers

        topology = FatTreeTopology(QUICK.fattree_k)
        rack = topology.host_rack("h0")
        hosts = sorted(
            n for n in topology.graph.neighbors(rack)
            if topology.roles[n].value == "host"
        )
        # Rack dies before the transfer starts and recovers well after the
        # startup window would have drained.
        schedule = FaultSchedule.ordered(
            tuple([switch_down(0.0001, rack)]
                  + [link_down(0.0001, rack, h) for h in hosts]
                  + [switch_up(0.004, rack)]
                  + [link_up(0.004, rack, h) for h in hosts])
        )
        spec = TransferSpec(
            transfer_id=1, kind=TransferKind.UNICAST, client="h0",
            peers=("h15",), size_bytes=QUICK.object_bytes, start_time=0.0002,
            label="foreground",
        )
        env = build_environment(Protocol.POLYRAPTOR, QUICK, topology=topology,
                                fault_schedule=schedule)
        offer_transfers(env, Protocol.POLYRAPTOR, [spec])
        env.sim.run(until=QUICK.max_sim_time_s)
        assert env.registry.completion_fraction() == 1.0
        session = env.polyraptor_agents["h0"].sender_session(1)
        assert session.startup_retries > 0  # the probes did the unblocking

    def test_multicast_push_with_one_dark_receiver_still_completes(self):
        """Per-receiver probing: a healthy group member's pulls must not
        cancel the probing that the dark member still needs.  (The first
        implementation stopped the timer on any pull -- the multicast
        session then waited forever for the receiver that never heard of
        it.)"""
        from repro.experiments.runner import build_environment, offer_transfers

        topology = FatTreeTopology(QUICK.fattree_k)
        rack = topology.host_rack("h6")  # h6's rack dies; h12 stays healthy
        hosts = sorted(
            n for n in topology.graph.neighbors(rack)
            if topology.roles[n].value == "host"
        )
        schedule = FaultSchedule.ordered(
            tuple([switch_down(0.0001, rack)]
                  + [link_down(0.0001, rack, h) for h in hosts]
                  + [switch_up(0.004, rack)]
                  + [link_up(0.004, rack, h) for h in hosts])
        )
        spec = TransferSpec(
            transfer_id=1, kind=TransferKind.REPLICATE, client="h0",
            peers=("h6", "h12"), size_bytes=QUICK.object_bytes, start_time=0.0002,
            label="foreground",
        )
        env = build_environment(Protocol.POLYRAPTOR, QUICK, topology=topology,
                                fault_schedule=schedule)
        offer_transfers(env, Protocol.POLYRAPTOR, [spec])
        env.sim.run(until=QUICK.max_sim_time_s)
        assert env.registry.completion_fraction() == 1.0
        assert env.polyraptor_agents["h0"].sender_session(1).startup_retries > 0

    def test_startup_probing_is_off_when_disabled(self):
        from dataclasses import replace as dc_replace

        from repro.experiments.runner import build_environment, offer_transfers

        config = dc_replace(
            QUICK, polyraptor=dc_replace(QUICK.polyraptor, startup_retry_limit=0)
        )
        spec = TransferSpec(
            transfer_id=1, kind=TransferKind.UNICAST, client="h0",
            peers=("h15",), size_bytes=QUICK.object_bytes, start_time=0.0,
            label="foreground",
        )
        env = build_environment(Protocol.POLYRAPTOR, config)
        offer_transfers(env, Protocol.POLYRAPTOR, [spec])
        env.sim.run(until=config.max_sim_time_s)
        # Healthy run: completes without probing either way.
        assert env.registry.completion_fraction() == 1.0
        assert env.polyraptor_agents["h0"].sender_session(1).startup_retries == 0


class TestCompoundUnderConvergenceDelay:
    def test_compound_failure_with_lag_black_holes_then_reroutes(self):
        config = ExperimentConfig(
            fattree_k=4, num_foreground_transfers=4, object_bytes=48 * KILOBYTE,
            background_fraction=0.0, max_sim_time_s=20.0,
            convergence_delay_s=0.0003,
        )
        schedule = FaultSchedule.ordered((
            switch_down(0.0001, "agg0_0"),
            link_down(0.0001, "agg0_0", "edge0_0"),
            switch_up(0.001, "agg0_0"),
            link_up(0.001, "agg0_0", "edge0_0"),
        ))
        spec = TransferSpec(
            transfer_id=1, kind=TransferKind.UNICAST, client="h0",
            peers=("h15",), size_bytes=48 * KILOBYTE, start_time=0.0,
            label="foreground",
        )
        run = run_transfers(Protocol.POLYRAPTOR, config, [spec], fault_schedule=schedule)
        assert run.completion_fraction == 1.0
        stats = run.fault_stats
        assert stats["recomputes_requested"] == 2
        assert stats["route_installs"] == 2  # both converged before the end
        # Packets black-holed by the stale tables during the lag windows.
        assert stats["packets_dropped_switch_down"] + stats["packets_dropped_link_down"] > 0


@pytest.mark.parametrize("jobs", [1, 4])
def test_compound_schedules_shard_identically(jobs):
    """Compound (SRLG + rack + gray) jobs are byte-identical for any --jobs N.

    The sequential jobs=1 pass is the reference; the parametrised run must
    reproduce its per-transfer metrics and fault counters exactly.
    """
    from repro.experiments.correlated import expand_correlated_sweep
    from repro.experiments.parallel import execute_jobs

    sweep = expand_correlated_sweep(
        QUICK, srlg_sizes=(2,), gray_rates=(0.05,), convergence_delays=(0.0005,),
        protocols=(Protocol.POLYRAPTOR, Protocol.TCP), num_seeds=1,
    )
    reference = execute_jobs(sweep, num_workers=1)
    runs = execute_jobs(sweep, num_workers=jobs)
    for ref, run in zip(reference, runs):
        assert ref.fault_stats == run.fault_stats
        assert ref.events_processed == run.events_processed
        assert [
            (r.transfer_id, r.start_time, r.completion_time) for r in ref.registry.records
        ] == [
            (r.transfer_id, r.start_time, r.completion_time) for r in run.registry.records
        ]
