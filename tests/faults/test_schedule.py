"""Tests for declarative fault schedules and the seeded random generator."""

import pickle
import random

import pytest

from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    fabric_edges,
    host_slowdown,
    link_degrade,
    link_down,
    link_loss,
    link_up,
    random_fault_schedule,
    straggler_schedule,
    switch_down,
)
from repro.network.topology import FatTreeTopology, NodeRole


class TestFaultEvent:
    def test_link_constructors_target_two_nodes(self):
        event = link_down(0.5, "agg0_0", "core0")
        assert event.kind is FaultKind.LINK_DOWN
        assert event.target == ("agg0_0", "core0")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            link_up(-0.1, "a", "b")

    def test_link_kinds_require_two_targets(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, FaultKind.LINK_DOWN, ("only-one",))
        with pytest.raises(ValueError):
            FaultEvent(0.0, FaultKind.SWITCH_DOWN, ("a", "b"))

    def test_degrade_severity_must_be_rate_fraction(self):
        assert link_degrade(0.0, "a", "b", 0.5).severity == 0.5
        with pytest.raises(ValueError):
            link_degrade(0.0, "a", "b", 0.0)
        with pytest.raises(ValueError):
            link_degrade(0.0, "a", "b", 1.5)

    def test_loss_severity_must_be_probability(self):
        assert link_loss(0.0, "a", "b", 0.0).severity == 0.0
        with pytest.raises(ValueError):
            link_loss(0.0, "a", "b", 1.01)

    def test_host_slowdown_severity_bounds(self):
        assert host_slowdown(0.0, "h0", 1.0).severity == 1.0
        with pytest.raises(ValueError):
            host_slowdown(0.0, "h0", 0.0)


class TestFaultSchedule:
    def test_ordered_sorts_out_of_order_events(self):
        schedule = FaultSchedule.ordered(
            (link_up(2.0, "a", "b"), link_down(1.0, "a", "b"), switch_down(0.5, "s"))
        )
        assert [event.time for event in schedule] == [0.5, 1.0, 2.0]
        assert schedule.last_time == 2.0

    def test_constructor_rejects_out_of_order_events(self):
        with pytest.raises(ValueError, match="non-decreasing time order"):
            FaultSchedule((link_up(2.0, "a", "b"), link_down(1.0, "a", "b")))

    def test_constructor_rejects_non_events(self):
        with pytest.raises(ValueError, match="not a FaultEvent"):
            FaultSchedule(("not-an-event",))

    def test_constructor_rejects_negative_times(self):
        # FaultEvent itself rejects negative times, but events restored from
        # tampered pickles bypass __post_init__ -- the schedule re-checks.
        rogue = FaultEvent.__new__(FaultEvent)
        for field_name, value in (
            ("time", -1.0), ("kind", FaultKind.SWITCH_DOWN),
            ("target", ("s",)), ("severity", 1.0), ("cause", ""),
        ):
            object.__setattr__(rogue, field_name, value)
        with pytest.raises(ValueError, match="negative time"):
            FaultSchedule((rogue,))

    def test_ordered_keeps_same_time_batches_stable(self):
        down_a = link_down(1.0, "a", "b")
        down_c = link_down(1.0, "c", "d")
        schedule = FaultSchedule.ordered((switch_down(2.0, "s"), down_a, down_c))
        assert schedule.events[:2] == (down_a, down_c)

    def test_len_bool_and_empty(self):
        assert len(FaultSchedule()) == 0
        assert not FaultSchedule()
        assert len(FaultSchedule((switch_down(0.0, "s"),))) == 1

    def test_merged_combines_and_resorts(self):
        one = FaultSchedule((link_down(1.0, "a", "b"),))
        two = FaultSchedule((switch_down(0.5, "s"),))
        merged = one.merged(two)
        assert len(merged) == 2
        assert merged.events[0].kind is FaultKind.SWITCH_DOWN

    def test_counts_by_kind(self):
        schedule = FaultSchedule(
            (link_down(0.0, "a", "b"), link_up(1.0, "a", "b"), link_down(2.0, "c", "d"))
        )
        counts = schedule.counts()
        assert counts["link_down"] == 2
        assert counts["link_up"] == 1
        assert counts["switch_down"] == 0

    def test_schedule_pickles_unchanged(self):
        schedule = FaultSchedule(
            (link_degrade(0.1, "a", "b", 0.4), host_slowdown(0.2, "h0", 0.25))
        )
        assert pickle.loads(pickle.dumps(schedule)) == schedule


class TestRandomFaultSchedule:
    @pytest.fixture(scope="class")
    def topology(self):
        return FatTreeTopology(4)

    def test_zero_intensity_is_empty(self, topology):
        assert len(random_fault_schedule(topology, random.Random(1), 0.0)) == 0

    def test_intensity_outside_unit_interval_rejected(self, topology):
        with pytest.raises(ValueError):
            random_fault_schedule(topology, random.Random(1), -0.5)
        with pytest.raises(ValueError):
            # > 1 would let the link-down slice swallow the whole edge
            # sample and silently drop the degrade/loss events.
            random_fault_schedule(topology, random.Random(1), 1.5)

    def test_same_seed_same_schedule(self, topology):
        one = random_fault_schedule(topology, random.Random(7), 0.8)
        two = random_fault_schedule(topology, random.Random(7), 0.8)
        assert one == two

    def test_different_seeds_differ(self, topology):
        one = random_fault_schedule(topology, random.Random(7), 0.8)
        two = random_fault_schedule(topology, random.Random(8), 0.8)
        assert one != two

    def test_only_fabric_links_are_touched(self, topology):
        schedule = random_fault_schedule(topology, random.Random(3), 1.0)
        assert schedule
        for event in schedule:
            if event.kind in (FaultKind.SWITCH_DOWN, FaultKind.SWITCH_UP):
                assert topology.roles[event.target[0]] is NodeRole.CORE
            else:
                for name in event.target:
                    assert topology.roles[name] is not NodeRole.HOST

    def test_every_fault_is_transient(self, topology):
        """Each down/degrade/lossy event has a matching restore event."""
        schedule = random_fault_schedule(topology, random.Random(5), 1.0)
        counts = schedule.counts()
        assert counts["link_down"] == counts["link_up"] > 0
        assert counts["switch_down"] == counts["switch_up"]
        degrades = [e for e in schedule if e.kind is FaultKind.LINK_DEGRADE]
        assert sum(1 for e in degrades if e.severity < 1.0) == sum(
            1 for e in degrades if e.severity == 1.0
        )
        losses = [e for e in schedule if e.kind is FaultKind.LINK_LOSS]
        assert sum(1 for e in losses if e.severity > 0.0) == sum(
            1 for e in losses if e.severity == 0.0
        )

    def test_small_nonzero_intensity_injects_something(self, topology):
        assert len(random_fault_schedule(topology, random.Random(1), 0.01)) >= 2

    def test_events_fall_in_window(self, topology):
        schedule = random_fault_schedule(
            topology, random.Random(2), 1.0, start_time=5.0, duration=2.0
        )
        for event in schedule:
            assert 5.0 <= event.time <= 7.0

    def test_fabric_edges_excludes_hosts(self, topology):
        edges = fabric_edges(topology)
        assert edges == sorted(edges)
        for a, b in edges:
            assert topology.roles[a] is not NodeRole.HOST
            assert topology.roles[b] is not NodeRole.HOST
        # k=4 fat-tree: 16 agg-edge links + 16 agg-core links.
        assert len(edges) == 32


class TestStragglerSchedule:
    def test_slowdown_and_recovery_events(self):
        schedule = straggler_schedule(
            ["h0", "h1", "h2"], random.Random(1), count=2,
            rate_fraction=0.25, time=1.0, recover_after=0.5,
        )
        slow = [e for e in schedule if e.severity < 1.0]
        recover = [e for e in schedule if e.severity == 1.0]
        assert len(slow) == len(recover) == 2
        assert all(e.kind is FaultKind.HOST_SLOWDOWN for e in schedule)
        assert all(e.time == 1.0 for e in slow)
        assert all(e.time == 1.5 for e in recover)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            straggler_schedule(["h0"], random.Random(1), count=2)
        with pytest.raises(ValueError):
            straggler_schedule(["h0"], random.Random(1), count=0)
