"""Tests for the correlated failure-model builders (SRLG, rack power, gray).

The builders are pure functions of (topology, seeded rng, arguments): these
tests pin down the correlated *shape* of each model -- SRLG links die in one
same-instant batch anchored at one switch, a rack takes its ToR and every
host link with it, gray failures never touch topology -- plus the up-front
argument validation and seeded determinism the sharded sweep relies on.
"""

import random

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    FaultKind,
    fabric_edges,
    gray_failure_schedule,
    rack_power_schedule,
    random_fault_schedule,
    shared_risk_group_schedule,
    straggler_schedule,
)
from repro.network.network import Network
from repro.network.topology import FatTreeTopology, NodeRole
from repro.sim.engine import Simulator


@pytest.fixture(scope="module")
def topology():
    return FatTreeTopology(4)


class TestSharedRiskGroupSchedule:
    def test_group_fails_and_recovers_as_one_batch(self, topology):
        schedule = shared_risk_group_schedule(topology, random.Random(1), group_size=3)
        downs = [e for e in schedule if e.kind is FaultKind.LINK_DOWN]
        ups = [e for e in schedule if e.kind is FaultKind.LINK_UP]
        assert len(downs) == len(ups) == 3
        assert len({e.time for e in downs}) == 1  # one same-instant batch
        assert len({e.time for e in ups}) == 1
        assert downs[0].time < ups[0].time
        assert {e.target for e in downs} == {e.target for e in ups}

    def test_group_links_share_an_anchor_switch(self, topology):
        schedule = shared_risk_group_schedule(topology, random.Random(2), group_size=4)
        downs = [e for e in schedule if e.kind is FaultKind.LINK_DOWN]
        anchors = set(downs[0].target)
        for event in downs[1:]:
            anchors &= set(event.target)
        assert anchors  # at least one switch appears in every group link

    def test_groups_are_disjoint(self, topology):
        schedule = shared_risk_group_schedule(
            topology, random.Random(3), group_size=2, num_groups=3
        )
        downs = [e for e in schedule if e.kind is FaultKind.LINK_DOWN]
        assert len(downs) == 6
        assert len({e.target for e in downs}) == 6  # no link in two groups

    def test_all_events_tagged_srlg(self, topology):
        schedule = shared_risk_group_schedule(topology, random.Random(4), group_size=2)
        assert {e.cause for e in schedule} == {"srlg"}
        for event in schedule:
            for name in event.target:
                assert topology.roles[name] is not NodeRole.HOST

    def test_same_seed_same_schedule(self, topology):
        one = shared_risk_group_schedule(topology, random.Random(7), 3, num_groups=2)
        two = shared_risk_group_schedule(topology, random.Random(7), 3, num_groups=2)
        assert one == two
        assert one != shared_risk_group_schedule(topology, random.Random(8), 3, num_groups=2)

    def test_validation_up_front(self, topology):
        rng = random.Random(1)
        with pytest.raises(ValueError, match="group_size"):
            shared_risk_group_schedule(topology, rng, group_size=0)
        with pytest.raises(ValueError, match="num_groups"):
            shared_risk_group_schedule(topology, rng, group_size=2, num_groups=0)
        with pytest.raises(ValueError, match="start_time"):
            shared_risk_group_schedule(topology, rng, group_size=2, start_time=-1.0)
        with pytest.raises(ValueError, match="duration"):
            shared_risk_group_schedule(topology, rng, group_size=2, duration=0.0)
        # k=4: an aggregation switch touches 2 edge + 2 core links = 4 max.
        with pytest.raises(ValueError, match="largest shared-risk set"):
            shared_risk_group_schedule(topology, rng, group_size=99)

    def test_too_many_disjoint_groups_rejected(self, topology):
        with pytest.raises(ValueError, match="disjoint shared-risk groups"):
            shared_risk_group_schedule(
                topology, random.Random(1), group_size=4, num_groups=99
            )

    def test_events_fall_in_window(self, topology):
        schedule = shared_risk_group_schedule(
            topology, random.Random(5), 2, start_time=3.0, duration=2.0
        )
        for event in schedule:
            assert 3.0 <= event.time <= 5.0


class TestRackPowerSchedule:
    def test_tor_and_all_host_links_fail_as_a_unit(self, topology):
        schedule = rack_power_schedule(topology, random.Random(1))
        down_switch = [e for e in schedule if e.kind is FaultKind.SWITCH_DOWN]
        assert len(down_switch) == 1
        tor = down_switch[0].target[0]
        assert topology.roles[tor] is NodeRole.EDGE
        rack_hosts = [
            n for n in topology.graph.neighbors(tor)
            if topology.roles[n] is NodeRole.HOST
        ]
        downs = [e for e in schedule if e.kind is FaultKind.LINK_DOWN]
        assert {e.target for e in downs} == {(tor, host) for host in sorted(rack_hosts)}
        # The whole unit dies at one instant and recovers at one instant.
        assert len({e.time for e in downs + down_switch}) == 1
        ups = [e for e in schedule
               if e.kind in (FaultKind.LINK_UP, FaultKind.SWITCH_UP)]
        assert len({e.time for e in ups}) == 1
        assert {e.cause for e in schedule} == {"rack_power"}

    def test_multiple_racks_are_distinct(self, topology):
        schedule = rack_power_schedule(topology, random.Random(2), num_racks=3)
        tors = [e.target[0] for e in schedule if e.kind is FaultKind.SWITCH_DOWN]
        assert len(tors) == len(set(tors)) == 3

    def test_validation_up_front(self, topology):
        rng = random.Random(1)
        with pytest.raises(ValueError, match="num_racks"):
            rack_power_schedule(topology, rng, num_racks=0)
        with pytest.raises(ValueError, match="only"):
            rack_power_schedule(topology, rng, num_racks=99)
        with pytest.raises(ValueError, match="duration"):
            rack_power_schedule(topology, rng, duration=-1.0)


class TestGrayFailureSchedule:
    def test_loss_smeared_across_many_links_and_cleared(self, topology):
        schedule = gray_failure_schedule(
            topology, random.Random(1), loss_probability=0.02, affected_fraction=0.5
        )
        onsets = [e for e in schedule
                  if e.kind is FaultKind.LINK_LOSS and e.severity > 0]
        clears = [e for e in schedule
                  if e.kind is FaultKind.LINK_LOSS and e.severity == 0.0]
        assert len(onsets) == len(clears) == round(0.5 * len(fabric_edges(topology)))
        assert all(e.severity == 0.02 for e in onsets)
        assert {e.target for e in onsets} == {e.target for e in clears}
        # Smeared, not struck: onsets are spread over distinct times.
        assert len({e.time for e in onsets}) > 1

    def test_no_topology_events_so_routing_never_reacts(self, topology):
        schedule = gray_failure_schedule(
            topology, random.Random(2), 0.05, degrade_to=0.85
        )
        counts = schedule.counts()
        assert counts["link_down"] == counts["link_up"] == 0
        assert counts["switch_down"] == counts["switch_up"] == 0
        assert counts["link_degrade"] > 0

    def test_optional_degrade_rides_the_same_links(self, topology):
        schedule = gray_failure_schedule(
            topology, random.Random(3), 0.02, affected_fraction=0.25, degrade_to=0.9
        )
        lossy = {e.target for e in schedule if e.kind is FaultKind.LINK_LOSS}
        degraded = {e.target for e in schedule if e.kind is FaultKind.LINK_DEGRADE}
        assert degraded == lossy

    def test_validation_up_front(self, topology):
        rng = random.Random(1)
        with pytest.raises(ValueError, match="loss_probability"):
            gray_failure_schedule(topology, rng, 0.0)  # a no-op gray failure
        with pytest.raises(ValueError, match="loss_probability"):
            gray_failure_schedule(topology, rng, 1.5)
        with pytest.raises(ValueError, match="affected_fraction"):
            gray_failure_schedule(topology, rng, 0.1, affected_fraction=0.0)
        with pytest.raises(ValueError, match="degrade_to"):
            gray_failure_schedule(topology, rng, 0.1, degrade_to=1.0)  # no-op degrade
        with pytest.raises(ValueError, match="start_time"):
            gray_failure_schedule(topology, rng, 0.1, start_time=-0.5)

    def test_same_seed_same_schedule(self, topology):
        one = gray_failure_schedule(topology, random.Random(9), 0.03)
        two = gray_failure_schedule(topology, random.Random(9), 0.03)
        assert one == two


class TestExistingBuildersValidateWindows:
    """The satellite fix: every builder rejects bad windows up front."""

    def test_random_fault_schedule_rejects_negative_start(self, topology):
        with pytest.raises(ValueError, match="start_time"):
            random_fault_schedule(topology, random.Random(1), 0.5, start_time=-1.0)

    def test_straggler_schedule_rejects_non_positive_recovery(self):
        with pytest.raises(ValueError, match="recover_after"):
            straggler_schedule(["h0", "h1"], random.Random(1), recover_after=0.0)


class TestCauseCounters:
    def test_injector_attributes_events_to_builders(self, topology):
        sim = Simulator()
        network = Network(sim, topology)
        schedule = shared_risk_group_schedule(
            topology, random.Random(1), group_size=2, start_time=0.0, duration=0.01
        ).merged(
            gray_failure_schedule(
                topology, random.Random(2), 0.5, affected_fraction=0.1,
                start_time=0.0, duration=0.01,
            )
        )
        injector = FaultInjector(sim, network, schedule)
        injector.start()
        sim.run()
        stats = injector.stats_dict()
        assert stats["cause_srlg"] == 4  # 2 links down + 2 links up
        assert stats["cause_gray"] == stats["links_lossy"] * 2
        assert stats["events_applied"] == stats["cause_srlg"] + stats["cause_gray"]


class TestGrayDegradeObservability:
    def test_degraded_ports_rise_mid_window_and_clear(self, topology):
        sim = Simulator()
        network = Network(sim, topology)
        schedule = gray_failure_schedule(
            topology, random.Random(5), 0.02, affected_fraction=0.25,
            degrade_to=0.85, start_time=0.0, duration=0.01,
        )
        injector = FaultInjector(sim, network, schedule)
        injector.start()
        assert network.degraded_ports == 0
        sim.run(until=0.005)  # mid-window: onsets applied, clears pending
        assert network.degraded_ports > 0
        # Gray targets are fabric (switch-to-switch) links, so both
        # directed ports exist and report the degrade.
        name_a, name_b = next(
            e.target for e in schedule.events
            if e.kind.value == "link_degrade" and e.severity < 1.0
        )
        assert network.switches[name_a].port_to(name_b).is_degraded
        assert network.switches[name_b].port_to(name_a).is_degraded
        sim.run()  # every gray link restored by the end of the window
        assert network.degraded_ports == 0
