"""Tests for code-parameter derivation."""

import pytest

from repro.rq.params import (
    MAX_SOURCE_SYMBOLS,
    MIN_SOURCE_SYMBOLS,
    for_k,
    is_prime,
    next_prime,
)


class TestPrimes:
    def test_is_prime_small_values(self):
        primes = {2, 3, 5, 7, 11, 13, 17, 19, 23}
        for value in range(25):
            assert is_prime(value) == (value in primes)

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(8) == 11
        assert next_prime(11) == 11
        assert next_prime(90) == 97


class TestParameterDerivation:
    @pytest.mark.parametrize("k", [4, 8, 16, 32, 64, 100, 128, 200, 256])
    def test_structural_invariants(self, k):
        params = for_k(k)
        assert params.num_source_symbols == k
        assert params.num_intermediate_symbols == (
            k + params.num_ldpc_symbols + params.num_hdpc_symbols
        )
        assert params.num_lt_symbols + params.num_pi_symbols == params.num_intermediate_symbols
        assert params.lt_non_ldpc_symbols == params.num_lt_symbols - params.num_ldpc_symbols
        assert params.lt_non_ldpc_symbols >= 1
        assert is_prime(params.num_ldpc_symbols)
        assert is_prime(params.pi_prime)
        assert params.pi_prime >= params.num_pi_symbols
        assert params.num_hdpc_symbols >= 6

    @pytest.mark.parametrize("k", [4, 16, 64, 128])
    def test_systematic_seed_gives_invertible_matrix(self, k):
        from repro.rq.matrix import build_constraint_matrix, matrix_rank_gf256

        params = for_k(k)
        matrix = build_constraint_matrix(params)
        assert matrix_rank_gf256(matrix) == params.num_intermediate_symbols

    def test_overhead_recommendation(self):
        assert for_k(16).overhead_symbols == 2

    def test_k_alias(self):
        assert for_k(10).k == 10

    def test_caching_returns_same_object(self):
        assert for_k(20) is for_k(20)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            for_k(MIN_SOURCE_SYMBOLS - 1)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            for_k(MAX_SOURCE_SYMBOLS + 1)

    def test_ldpc_count_grows_with_k(self):
        assert for_k(256).num_ldpc_symbols > for_k(16).num_ldpc_symbols
