"""Tests for the codec backend registry and the elimination-plan cache.

The central property: the ``planned`` backend (cached elimination plans,
batched symbol-plane replay) must be **byte-identical** to the ``reference``
backend (full per-block Gaussian elimination) for every symbol it emits and
every block it decodes, across many K' values, with and without loss.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.rq.backend import (
    DEFAULT_BACKEND,
    CodecContext,
    available_backends,
    create_backend,
    default_context,
)
from repro.rq.decoder import BlockDecoder
from repro.rq.encoder import BlockEncoder
from repro.rq.gf256 import gf_matmul, gf_matvec
from repro.rq.params import for_k
from repro.rq.plan import PlanCache, build_plan, constraint_matrix, received_matrix
from repro.rq.solver import SingularMatrixError, solve

SYMBOL_SIZE = 256

#: K' values for the cross-backend equivalence sweep (acceptance: >= 5).
K_VALUES = [5, 8, 12, 21, 32, 47]


def source_block(k: int, seed: int = 1) -> list[bytes]:
    rng = random.Random(seed)
    return [bytes(rng.getrandbits(8) for _ in range(SYMBOL_SIZE)) for _ in range(k)]


def lossy_symbols(encoder: BlockEncoder, k: int, seed: int = 3) -> list[tuple[int, bytes]]:
    """Symbols surviving ~30% source loss, topped up with repairs + overhead."""
    rng = random.Random(seed)
    kept = [esi for esi in range(k) if rng.random() > 0.3]
    repair = list(range(k, k + (k - len(kept)) + 2))
    return [(esi, encoder.symbol(esi)) for esi in kept + repair]


class TestBackendRegistry:
    def test_both_backends_registered(self):
        assert {"reference", "planned"} <= set(available_backends())

    def test_default_backend_is_planned(self):
        assert DEFAULT_BACKEND == "planned"
        assert default_context().backend_name in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown codec backend"):
            create_backend("does-not-exist")

    def test_context_accepts_instance(self):
        context = CodecContext(create_backend("reference"))
        assert context.backend_name == "reference"


class TestBackendEquivalence:
    @pytest.mark.parametrize("k", K_VALUES)
    def test_encode_byte_identical(self, k):
        source = source_block(k)
        reference = BlockEncoder(source, context=CodecContext("reference"))
        planned = BlockEncoder(source, context=CodecContext("planned"))
        assert np.array_equal(reference.intermediate_plane, planned.intermediate_plane)
        for esi in list(range(k)) + list(range(k, k + 8)):
            assert reference.symbol(esi) == planned.symbol(esi), f"esi={esi}"

    @pytest.mark.parametrize("k", K_VALUES)
    def test_lossy_round_trip_byte_identical(self, k):
        source = source_block(k)
        encoder = BlockEncoder(source, context=CodecContext("reference"))
        symbols = lossy_symbols(encoder, k)
        decoded = {}
        for backend in ("reference", "planned"):
            decoder = BlockDecoder(k, SYMBOL_SIZE, context=CodecContext(backend))
            for esi, data in symbols:
                decoder.add_symbol(esi, data)
            result = decoder.decode()
            assert result.success and result.used_gaussian_elimination, backend
            decoded[backend] = result.source_symbols
        assert decoded["reference"] == decoded["planned"]
        assert b"".join(decoded["planned"]) == b"".join(source)

    def test_batched_symbol_block_matches_per_symbol_path(self):
        k = 16
        encoder = BlockEncoder(source_block(k), context=CodecContext("planned"))
        esis = list(range(k + 6))
        plane = encoder.symbol_block(esis)
        for row, esi in enumerate(esis):
            assert plane[row].tobytes() == encoder.symbol(esi)


class TestPlanCacheBehaviour:
    def test_second_block_same_k_hits_cache(self):
        context = CodecContext("planned")
        BlockEncoder(source_block(24, seed=1), context=context)
        assert (context.stats.hits, context.stats.misses) == (0, 1)
        BlockEncoder(source_block(24, seed=2), context=context)
        assert (context.stats.hits, context.stats.misses) == (1, 1)

    def test_distinct_k_values_do_not_share_plans(self):
        context = CodecContext("planned")
        BlockEncoder(source_block(10), context=context)
        BlockEncoder(source_block(11), context=context)
        assert context.stats.misses == 2
        assert context.cached_plans == 2

    def test_repeated_loss_pattern_hits_decode_cache(self):
        k = 12
        context = CodecContext("planned")
        encoder = BlockEncoder(source_block(k), context=CodecContext("reference"))
        symbols = lossy_symbols(encoder, k)
        for expected_hits in (0, 1):
            decoder = BlockDecoder(k, SYMBOL_SIZE, context=context)
            for esi, data in symbols:
                decoder.add_symbol(esi, data)
            assert decoder.decode().success
            assert context.stats.hits == expected_hits

    def test_reference_backend_never_touches_cache(self):
        context = CodecContext("reference")
        BlockEncoder(source_block(8), context=context)
        assert context.stats.lookups == 0
        assert context.blocks_encoded == 1

    def test_stats_dict_shape(self):
        context = CodecContext("planned")
        BlockEncoder(source_block(8), context=context)
        stats = context.stats_dict()
        assert stats["backend"] == "planned"
        assert stats["blocks_encoded"] == 1
        assert stats["plan_cache"]["misses"] == 1
        assert 0.0 <= stats["plan_cache"]["hit_rate"] <= 1.0

    def test_lru_eviction_is_bounded(self):
        cache = PlanCache(max_entries=2)
        plan = build_plan(np.eye(3, dtype=np.uint8))
        for key in ("a", "b", "c"):
            cache.get_or_build(key, lambda: plan)
        assert len(cache) == 2
        assert cache.evictions == 1
        # "a" was evicted (least recently used); "c" is still cached.
        assert cache.get_or_build("c", lambda: plan)[1] is True
        assert cache.get_or_build("a", lambda: plan)[1] is False


class TestEliminationPlan:
    def test_operator_matches_direct_solve(self):
        params = for_k(9)
        matrix = constraint_matrix(params)
        plan = build_plan(matrix)
        rng = np.random.default_rng(5)
        rhs = rng.integers(0, 256, (matrix.shape[0], 17), dtype=np.uint8)
        assert np.array_equal(plan.apply(rhs), solve(matrix, rhs))

    def test_step_replay_matches_fused_operator(self):
        params = for_k(13)
        matrix = constraint_matrix(params)
        plan = build_plan(matrix)
        rng = np.random.default_rng(6)
        rhs = rng.integers(0, 256, (matrix.shape[0], 9), dtype=np.uint8)
        assert np.array_equal(plan.replay(rhs), plan.apply(rhs))
        assert plan.steps, "the recorded row-op sequence must not be empty"

    def test_apply_from_row_equals_zero_padded_apply(self):
        params = for_k(7)
        plan = build_plan(constraint_matrix(params))
        constraints = params.num_ldpc_symbols + params.num_hdpc_symbols
        rng = np.random.default_rng(7)
        tail = rng.integers(0, 256, (plan.num_rows - constraints, 5), dtype=np.uint8)
        full = np.zeros((plan.num_rows, 5), dtype=np.uint8)
        full[constraints:] = tail
        assert np.array_equal(plan.apply_from_row(tail, constraints), plan.apply(full))

    def test_overdetermined_decode_plan(self):
        params = for_k(6)
        k = params.num_source_symbols
        esis = tuple(range(1, k)) + (k, k + 1, k + 2)
        matrix = received_matrix(params, esis)
        plan = build_plan(matrix, num_unknowns=params.num_intermediate_symbols)
        rng = np.random.default_rng(8)
        rhs = rng.integers(0, 256, (matrix.shape[0], 3), dtype=np.uint8)
        # The plan only promises agreement with solve for consistent systems,
        # so synthesise one: rhs = matrix . X for a random X.
        x = rng.integers(0, 256, (params.num_intermediate_symbols, 3), dtype=np.uint8)
        rhs = gf_matmul(matrix, x)
        assert np.array_equal(plan.apply(rhs), x)

    def test_record_steps_false_keeps_operator_only(self):
        params = for_k(7)
        matrix = constraint_matrix(params)
        lean = build_plan(matrix, record_steps=False)
        full = build_plan(matrix)
        assert lean.steps is None
        assert np.array_equal(lean.operator, full.operator)
        with pytest.raises(ValueError, match="record_steps"):
            lean.replay(np.zeros((lean.num_rows, 2), dtype=np.uint8))

    def test_singular_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            build_plan(np.zeros((4, 4), dtype=np.uint8))

    def test_wrong_rhs_shape_rejected(self):
        plan = build_plan(np.eye(4, dtype=np.uint8))
        with pytest.raises(ValueError):
            plan.apply(np.zeros((5, 2), dtype=np.uint8))
        with pytest.raises(ValueError):
            plan.apply_from_row(np.zeros((4, 2), dtype=np.uint8), 1)


class TestGfMatmul:
    def test_matches_matvec(self):
        rng = np.random.default_rng(9)
        a = rng.integers(0, 256, (6, 8), dtype=np.uint8)
        b = rng.integers(0, 256, (8, 4), dtype=np.uint8)
        product = gf_matmul(a, b)
        for column in range(4):
            assert np.array_equal(product[:, column], gf_matvec(a, b[:, column]))

    def test_identity_is_neutral(self):
        rng = np.random.default_rng(10)
        b = rng.integers(0, 256, (5, 7), dtype=np.uint8)
        assert np.array_equal(gf_matmul(np.eye(5, dtype=np.uint8), b), b)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8))
