"""Tests for the LT tuple generator and the pre-code constraint matrix."""

import numpy as np
import pytest

from repro.rq.matrix import build_constraint_matrix, hdpc_rows, ldpc_rows, lt_row
from repro.rq.params import for_k
from repro.rq.tuples import lt_neighbours, make_tuple


class TestTupleGenerator:
    def test_deterministic(self):
        params = for_k(32)
        assert make_tuple(params, 5) == make_tuple(params, 5)

    def test_fields_in_range(self):
        params = for_k(64)
        for isi in range(0, 500, 7):
            t = make_tuple(params, isi)
            assert 1 <= t.d <= 30
            assert 1 <= t.a < params.num_lt_symbols
            assert 0 <= t.b < params.num_lt_symbols
            assert t.d1 in (2, 3)
            assert 1 <= t.a1 < params.pi_prime
            assert 0 <= t.b1 < params.pi_prime

    def test_rejects_negative_isi(self):
        with pytest.raises(ValueError):
            make_tuple(for_k(16), -1)

    def test_neighbours_valid_indices(self):
        params = for_k(48)
        for isi in range(200):
            neighbours = lt_neighbours(params, isi)
            assert neighbours, "every encoding symbol must have at least one neighbour"
            assert len(set(neighbours)) == len(neighbours)
            for index in neighbours:
                assert 0 <= index < params.num_intermediate_symbols

    def test_neighbour_sets_differ_across_symbols(self):
        params = for_k(48)
        distinct = {tuple(lt_neighbours(params, isi)) for isi in range(100)}
        assert len(distinct) > 80


class TestConstraintMatrix:
    def test_shapes(self):
        params = for_k(32)
        assert ldpc_rows(params).shape == (
            params.num_ldpc_symbols, params.num_intermediate_symbols
        )
        assert hdpc_rows(params).shape == (
            params.num_hdpc_symbols, params.num_intermediate_symbols
        )
        assert build_constraint_matrix(params).shape == (
            params.num_intermediate_symbols, params.num_intermediate_symbols
        )

    def test_ldpc_rows_are_binary_and_nonzero(self):
        params = for_k(32)
        rows = ldpc_rows(params)
        assert set(np.unique(rows)) <= {0, 1}
        assert all(row.sum() > 0 for row in rows)

    def test_ldpc_identity_block_present(self):
        params = for_k(32)
        rows = ldpc_rows(params)
        b = params.lt_non_ldpc_symbols
        for i in range(params.num_ldpc_symbols):
            assert rows[i, b + i] == 1

    def test_hdpc_rows_have_identity_block(self):
        params = for_k(32)
        rows = hdpc_rows(params)
        span = params.num_source_symbols + params.num_ldpc_symbols
        for j in range(params.num_hdpc_symbols):
            assert rows[j, span + j] == 1

    def test_hdpc_rows_are_dense(self):
        params = for_k(64)
        rows = hdpc_rows(params)
        span = params.num_source_symbols + params.num_ldpc_symbols
        # GAMMA makes every HDPC row touch a large fraction of the first K+S columns.
        for row in rows:
            assert np.count_nonzero(row[:span]) > span // 2

    def test_lt_rows_match_neighbours(self):
        params = for_k(32)
        from repro.rq.tuples import lt_neighbours

        for isi in (0, 1, 17, 100):
            row = lt_row(params, isi)
            assert set(np.nonzero(row)[0]) == set(lt_neighbours(params, isi))

    def test_last_k_rows_are_source_lt_rows(self):
        params = for_k(16)
        matrix = build_constraint_matrix(params)
        offset = params.num_ldpc_symbols + params.num_hdpc_symbols
        for isi in range(params.num_source_symbols):
            assert np.array_equal(matrix[offset + isi], lt_row(params, isi))
