"""Tests for object segmentation and the high-level encode/decode API."""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.rq.api import decode_object, encode_object
from repro.rq.block import (
    EncodedSymbol,
    ObjectDecoder,
    ObjectEncoder,
    partition_object,
)
from repro.rq.decoder import DecodeFailure
from repro.rq.params import MIN_SOURCE_SYMBOLS


class TestPartitioning:
    def test_small_object_single_block(self):
        oti = partition_object(10_000, 1000, 64)
        assert oti.num_source_blocks == 1
        assert oti.symbols_per_block == (10,)

    def test_minimum_symbol_count_enforced(self):
        oti = partition_object(100, 1000, 64)
        assert oti.total_source_symbols >= MIN_SOURCE_SYMBOLS

    def test_large_object_splits_into_blocks(self):
        oti = partition_object(1_000_000, 1000, 256)
        assert oti.num_source_blocks == 4
        assert sum(oti.symbols_per_block) == 1000

    def test_blocks_differ_by_at_most_one_symbol(self):
        oti = partition_object(999_000, 1000, 256)
        sizes = set(oti.symbols_per_block)
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            partition_object(0, 1000, 64)
        with pytest.raises(ValueError):
            partition_object(1000, 0, 64)
        with pytest.raises(ValueError):
            partition_object(1000, 100, 2)

    @given(
        transfer_length=st.integers(min_value=1, max_value=5_000_000),
        symbol_size=st.sampled_from([256, 512, 1024, 1408]),
        max_symbols=st.sampled_from([16, 64, 256]),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_covers_object(self, transfer_length, symbol_size, max_symbols):
        oti = partition_object(transfer_length, symbol_size, max_symbols)
        assert oti.total_source_symbols * symbol_size >= transfer_length
        assert all(count >= MIN_SOURCE_SYMBOLS for count in oti.symbols_per_block)
        assert all(count <= max_symbols + 1 for count in oti.symbols_per_block)


class TestObjectEncoderDecoder:
    def test_rejects_empty_object(self):
        with pytest.raises(ValueError):
            ObjectEncoder(b"")

    def test_source_symbols_cover_data(self):
        data = os.urandom(5_000)
        encoder = ObjectEncoder(data, symbol_size=512, max_symbols_per_block=16)
        joined = b"".join(symbol.data for symbol in encoder.source_symbols())
        assert joined[: len(data)] == data

    def test_block_out_of_range(self):
        encoder = ObjectEncoder(b"x" * 5000, symbol_size=512)
        with pytest.raises(IndexError):
            encoder.block(99)

    def test_roundtrip_source_only(self):
        data = os.urandom(20_000)
        encoder = ObjectEncoder(data, symbol_size=512, max_symbols_per_block=16)
        decoder = ObjectDecoder(encoder.oti)
        decoder.add_symbols(encoder.source_symbols())
        assert decoder.decode() == data

    def test_roundtrip_with_losses_and_repair(self):
        data = os.urandom(30_000)
        encoder = ObjectEncoder(data, symbol_size=512, max_symbols_per_block=16)
        decoder = ObjectDecoder(encoder.oti)
        rng = random.Random(5)
        for block in range(encoder.num_blocks):
            k = encoder.oti.block_symbol_count(block)
            kept = [esi for esi in range(k) if rng.random() > 0.25]
            for esi in kept:
                decoder.add_symbol(encoder.symbol(block, esi))
            for symbol in encoder.repair_symbols(block, k, k - len(kept) + 2):
                decoder.add_symbol(symbol)
        assert decoder.decode() == data

    def test_decode_fails_cleanly_when_starved(self):
        data = os.urandom(10_000)
        encoder = ObjectEncoder(data, symbol_size=512, max_symbols_per_block=16)
        decoder = ObjectDecoder(encoder.oti)
        decoder.add_symbol(encoder.symbol(0, 0))
        assert not decoder.can_attempt_decode()
        with pytest.raises(DecodeFailure):
            decoder.decode()

    def test_unknown_block_rejected(self):
        data = os.urandom(1_000)
        encoder = ObjectEncoder(data, symbol_size=256)
        decoder = ObjectDecoder(encoder.oti)
        with pytest.raises(ValueError):
            decoder.add_symbol(EncodedSymbol(block_number=7, esi=0, data=b"\x00" * 256))

    def test_is_source_for(self):
        symbol = EncodedSymbol(block_number=0, esi=3, data=b"")
        assert symbol.is_source_for(4)
        assert not symbol.is_source_for(3)

    def test_is_complete_tracks_block_decoders(self):
        data = os.urandom(4_000)
        encoder = ObjectEncoder(data, symbol_size=512, max_symbols_per_block=8)
        decoder = ObjectDecoder(encoder.oti)
        assert not decoder.is_complete()
        decoder.add_symbols(encoder.source_symbols())
        decoder.decode()
        assert decoder.is_complete()


class TestHighLevelApi:
    def test_encode_decode_roundtrip(self):
        data = os.urandom(12_345)
        oti, symbols = encode_object(data, symbol_size=512, repair_symbols_per_block=0,
                                     max_symbols_per_block=32)
        assert decode_object(oti, symbols) == data

    def test_decode_with_dropped_sources_uses_repair(self):
        data = os.urandom(12_345)
        oti, symbols = encode_object(data, symbol_size=512, repair_symbols_per_block=6,
                                     max_symbols_per_block=32)
        rng = random.Random(2)
        survivors = [s for s in symbols if s.esi >= oti.block_symbol_count(s.block_number)
                     or rng.random() > 0.15]
        assert decode_object(oti, survivors) == data

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.binary(min_size=1, max_size=8_000))
    def test_api_roundtrip_property(self, data):
        oti, symbols = encode_object(data, symbol_size=256, max_symbols_per_block=32)
        assert decode_object(oti, symbols) == data
