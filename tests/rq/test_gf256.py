"""Tests for GF(256) arithmetic, including field axioms via hypothesis."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rq.gf256 import (
    ALPHA,
    OCT_EXP,
    OCT_LOG,
    alpha_power,
    gf_div,
    gf_inv,
    gf_matvec,
    gf_mul,
    gf_pow,
    gf_scale_rows,
    gf_scale_vector,
)

field_elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


class TestTables:
    def test_exp_log_roundtrip(self):
        for value in range(1, 256):
            assert OCT_EXP[OCT_LOG[value]] == value

    def test_exp_table_periodic(self):
        for power in range(255):
            assert OCT_EXP[power] == OCT_EXP[power + 255]

    def test_alpha_is_generator(self):
        seen = {alpha_power(i) for i in range(255)}
        assert seen == set(range(1, 256))


class TestScalarOps:
    def test_multiply_by_zero_and_one(self):
        for value in range(256):
            assert gf_mul(value, 0) == 0
            assert gf_mul(0, value) == 0
            assert gf_mul(value, 1) == value

    @given(field_elements, field_elements)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(field_elements, field_elements, field_elements)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(field_elements, field_elements, field_elements)
    def test_distributive_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    @given(nonzero_elements)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(nonzero_elements, nonzero_elements)
    def test_division_inverts_multiplication(self, a, b):
        assert gf_div(gf_mul(a, b), b) == a

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)
        with pytest.raises(ZeroDivisionError):
            gf_div(3, 0)

    @given(nonzero_elements, st.integers(min_value=0, max_value=600))
    def test_pow_matches_repeated_multiplication(self, a, exponent):
        expected = 1
        for _ in range(exponent % 255):
            expected = gf_mul(expected, a)
        # gf_pow reduces the exponent mod 255 internally (a^255 == 1).
        assert gf_pow(a, exponent % 255) == expected

    def test_alpha_power_matches_pow(self):
        for exponent in range(0, 300, 7):
            assert alpha_power(exponent) == gf_pow(ALPHA, exponent % 255)


class TestVectorOps:
    def test_scale_vector_matches_scalar(self):
        rng = np.random.default_rng(0)
        vector = rng.integers(0, 256, 64, dtype=np.uint8)
        for factor in (0, 1, 2, 37, 255):
            scaled = gf_scale_vector(vector, factor)
            expected = np.array([gf_mul(int(v), factor) for v in vector], dtype=np.uint8)
            assert np.array_equal(scaled, expected)

    def test_scale_rows_matches_scalar(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 256, (5, 16), dtype=np.uint8)
        factors = np.array([0, 1, 3, 128, 255], dtype=np.uint8)
        scaled = gf_scale_rows(rows, factors)
        for row_index in range(5):
            expected = np.array(
                [gf_mul(int(v), int(factors[row_index])) for v in rows[row_index]],
                dtype=np.uint8,
            )
            assert np.array_equal(scaled[row_index], expected)

    def test_scale_rows_requires_2d(self):
        with pytest.raises(ValueError):
            gf_scale_rows(np.zeros(4, dtype=np.uint8), np.zeros(4, dtype=np.uint8))

    def test_matvec_against_manual(self):
        matrix = np.array([[1, 2], [0, 3]], dtype=np.uint8)
        vector = np.array([5, 7], dtype=np.uint8)
        result = gf_matvec(matrix, vector)
        assert result[0] == gf_mul(1, 5) ^ gf_mul(2, 7)
        assert result[1] == gf_mul(3, 7)
