"""Tests for the codec PRNG and degree distribution."""

import pytest

from repro.rq.degree import DEGREE_RANDOM_RANGE, DEGREE_TABLE, MAX_DEGREE, deg, degree_probabilities
from repro.rq.rand import rand


class TestRand:
    def test_deterministic(self):
        assert rand(12345, 3, 1000) == rand(12345, 3, 1000)

    def test_within_modulus(self):
        for y in range(0, 5000, 37):
            for i in range(6):
                assert 0 <= rand(y, i, 97) < 97

    def test_different_streams_differ(self):
        outcomes = {rand(42, i, 1 << 20) for i in range(8)}
        assert len(outcomes) > 1

    def test_different_seeds_differ(self):
        outcomes = {rand(y, 0, 1 << 20) for y in range(50)}
        assert len(outcomes) > 40

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            rand(1, 0, 0)

    def test_roughly_uniform(self):
        modulus = 10
        counts = [0] * modulus
        trials = 20_000
        for y in range(trials):
            counts[rand(y, 0, modulus)] += 1
        for count in counts:
            assert abs(count - trials / modulus) < trials / modulus * 0.15


class TestDegreeDistribution:
    def test_table_is_monotone(self):
        assert list(DEGREE_TABLE) == sorted(DEGREE_TABLE)

    def test_table_spans_full_range(self):
        assert DEGREE_TABLE[0] == 0
        assert DEGREE_TABLE[-1] == DEGREE_RANDOM_RANGE

    def test_deg_returns_valid_degree(self):
        w = 1000
        for v in range(0, DEGREE_RANDOM_RANGE, 4099):
            degree = deg(v, w)
            assert 1 <= degree <= MAX_DEGREE

    def test_deg_caps_at_w_minus_two(self):
        assert deg(DEGREE_RANDOM_RANGE - 1, 10) <= 8

    def test_deg_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            deg(-1, 100)
        with pytest.raises(ValueError):
            deg(DEGREE_RANDOM_RANGE, 100)

    def test_degree_two_is_most_likely(self):
        pmf = degree_probabilities()
        assert pmf[2] == max(pmf.values())
        assert pmf[2] > 0.4

    def test_probabilities_sum_to_one(self):
        assert sum(degree_probabilities().values()) == pytest.approx(1.0)

    def test_low_degrees_dominate(self):
        pmf = degree_probabilities()
        assert sum(pmf[d] for d in range(1, 5)) > 0.75
