"""Tests for the GF(256) Gaussian-elimination solver."""

import numpy as np
import pytest

from repro.rq.gf256 import gf_matvec
from repro.rq.solver import SingularMatrixError, gaussian_rank, solve


def random_invertible_matrix(size: int, rng: np.random.Generator) -> np.ndarray:
    """Draw random GF(256) matrices until one has full rank."""
    while True:
        matrix = rng.integers(0, 256, (size, size), dtype=np.uint8)
        if gaussian_rank(matrix) == size:
            return matrix


class TestGaussianRank:
    def test_identity_full_rank(self):
        assert gaussian_rank(np.eye(8, dtype=np.uint8)) == 8

    def test_zero_matrix_rank_zero(self):
        assert gaussian_rank(np.zeros((5, 5), dtype=np.uint8)) == 0

    def test_duplicate_rows_reduce_rank(self):
        matrix = np.eye(4, dtype=np.uint8)
        matrix[3] = matrix[0]
        assert gaussian_rank(matrix) == 3

    def test_input_not_modified(self):
        matrix = np.eye(4, dtype=np.uint8)
        copy = matrix.copy()
        gaussian_rank(matrix)
        assert np.array_equal(matrix, copy)


class TestSolve:
    def test_identity_system(self):
        values = np.arange(12, dtype=np.uint8).reshape(4, 3)
        solution = solve(np.eye(4, dtype=np.uint8), values)
        assert np.array_equal(solution, values)

    @pytest.mark.parametrize("size", [4, 8, 16, 32])
    def test_random_square_systems(self, size):
        rng = np.random.default_rng(size)
        matrix = random_invertible_matrix(size, rng)
        expected = rng.integers(0, 256, (size, 5), dtype=np.uint8)
        values = np.zeros_like(expected)
        for column in range(expected.shape[1]):
            values[:, column] = gf_matvec(matrix, expected[:, column])
        solution = solve(matrix, values)
        assert np.array_equal(solution, expected)

    def test_overdetermined_consistent_system(self):
        rng = np.random.default_rng(7)
        matrix = random_invertible_matrix(6, rng)
        expected = rng.integers(0, 256, (6, 2), dtype=np.uint8)
        values = np.zeros_like(expected)
        for column in range(2):
            values[:, column] = gf_matvec(matrix, expected[:, column])
        # Duplicate some equations: still solvable.
        stacked_matrix = np.vstack([matrix, matrix[:3]])
        stacked_values = np.vstack([values, values[:3]])
        solution = solve(stacked_matrix, stacked_values, num_unknowns=6)
        assert np.array_equal(solution, expected)

    def test_singular_system_raises(self):
        matrix = np.zeros((4, 4), dtype=np.uint8)
        matrix[0, 0] = 1
        with pytest.raises(SingularMatrixError):
            solve(matrix, np.zeros((4, 1), dtype=np.uint8))

    def test_underdetermined_raises(self):
        with pytest.raises(SingularMatrixError):
            solve(np.eye(3, 5, dtype=np.uint8)[:3], np.zeros((3, 1), dtype=np.uint8))

    def test_mismatched_rhs_raises(self):
        with pytest.raises(ValueError):
            solve(np.eye(4, dtype=np.uint8), np.zeros((3, 1), dtype=np.uint8))
