"""Tests for the GF(256) kernel registry and canonical decode-plan keys.

Two load-bearing properties:

1. **Kernel equivalence.**  Every available kernel produces byte-identical
   ``matmul`` / ``matvec`` / ``scale_rows`` results vs the ``numpy`` ground
   truth on randomised uint8 inputs (including all-zero rows and factors),
   and full lossy decode sessions come out identical across kernels.

2. **Canonical decode keys raise the hit rate under loss** (strictly, with
   counters straight from :class:`~repro.rq.backend.CodecContext`): blocks
   that lose the same source pattern share one elimination plan no matter
   how many surplus repair symbols each happened to receive, where the
   legacy exact-ESI keying builds a fresh plan per surplus count.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.rq.backend import CodecContext, prewarm_decode_plans
from repro.rq.decoder import BlockDecoder
from repro.rq.encoder import BlockEncoder
from repro.rq.gf256 import gf_matmul, gf_matvec, gf_scale_rows
from repro.rq.kernels import (
    KERNEL_ENV_VAR,
    available_kernels,
    best_kernel_name,
    default_kernel_name,
    get_kernel,
    registered_kernels,
)
from repro.rq.params import for_k
from repro.rq.plan import canonical_decode_candidates, canonical_decode_key, missing_source_pattern

K = 16
SYMBOL_SIZE = 64


def source_block(k: int = K, seed: int = 1) -> list[bytes]:
    rng = random.Random(seed)
    return [bytes(rng.getrandbits(8) for _ in range(SYMBOL_SIZE)) for _ in range(k)]


class TestKernelRegistry:
    def test_all_three_kernels_registered(self):
        assert {"numpy", "blocked", "numba"} <= set(registered_kernels())

    def test_pure_python_kernels_always_available(self):
        assert {"numpy", "blocked"} <= set(available_kernels())

    def test_best_kernel_prefers_acceleration(self):
        best = best_kernel_name()
        assert best != "numpy"
        assert best in available_kernels()

    def test_get_kernel_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown GF\\(256\\) kernel"):
            get_kernel("does-not-exist")

    def test_get_kernel_passes_instances_through(self):
        kernel = get_kernel("blocked")
        assert get_kernel(kernel) is kernel

    def test_instances_are_shared(self):
        assert get_kernel("blocked") is get_kernel("blocked")

    def test_env_var_selects_kernel(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "numpy")
        assert default_kernel_name() == "numpy"
        assert CodecContext("planned").kernel_name == "numpy"

    def test_env_var_bogus_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "not-a-kernel")
        with pytest.warns(RuntimeWarning, match="not an available"):
            assert default_kernel_name() == best_kernel_name()

    def test_explicit_unavailable_kernel_raises(self):
        unavailable = set(registered_kernels()) - set(available_kernels())
        for name in unavailable:  # numba, on platforms without it
            with pytest.raises(ValueError, match="not available"):
                get_kernel(name)

    def test_context_reports_kernel_in_stats(self):
        context = CodecContext("planned", kernel="blocked")
        stats = context.stats_dict()
        assert stats["kernel"] == "blocked"
        assert stats["canonical_decode_plans"] is True


class TestKernelEquivalence:
    """Byte-identical results vs the numpy ground truth, for every kernel."""

    def _cases(self):
        rng = np.random.default_rng(7)
        cases = []
        for m, n, t in [(1, 1, 1), (5, 8, 3), (34, 16, 130), (51, 40, 257)]:
            a = rng.integers(0, 256, (m, n), dtype=np.uint8)
            b = rng.integers(0, 256, (n, t), dtype=np.uint8)
            cases.append((a, b))
        # Zero rows / zero columns / all-zero operands must short-circuit
        # identically.
        a = rng.integers(0, 256, (6, 9), dtype=np.uint8)
        b = rng.integers(0, 256, (9, 11), dtype=np.uint8)
        a[2] = 0
        a[:, 4] = 0
        b[1] = 0
        cases.append((a, b))
        cases.append((np.zeros((4, 5), dtype=np.uint8), b[:5]))
        return cases

    @pytest.mark.parametrize("name", sorted(set(available_kernels()) - {"numpy"}))
    def test_matmul_matches_numpy(self, name):
        kernel = get_kernel(name)
        for a, b in self._cases():
            assert np.array_equal(kernel.matmul(a, b), gf_matmul(a, b)), name

    @pytest.mark.parametrize("name", sorted(set(available_kernels()) - {"numpy"}))
    def test_matmul_accepts_noncontiguous_views(self, name):
        # Plan replay passes operator[:, first_row:] -- a non-contiguous view.
        rng = np.random.default_rng(8)
        a = rng.integers(0, 256, (20, 30), dtype=np.uint8)
        b = rng.integers(0, 256, (18, 40), dtype=np.uint8)
        kernel = get_kernel(name)
        assert np.array_equal(kernel.matmul(a[:, 12:], b), gf_matmul(a[:, 12:], b))

    @pytest.mark.parametrize("name", sorted(set(available_kernels()) - {"numpy"}))
    def test_matvec_matches_numpy(self, name):
        kernel = get_kernel(name)
        rng = np.random.default_rng(9)
        for m, n in [(1, 1), (7, 5), (33, 20)]:
            matrix = rng.integers(0, 256, (m, n), dtype=np.uint8)
            vector = rng.integers(0, 256, n, dtype=np.uint8)
            matrix[0] = 0
            vector[-1] = 0
            assert np.array_equal(kernel.matvec(matrix, vector), gf_matvec(matrix, vector))

    @pytest.mark.parametrize("name", sorted(set(available_kernels()) - {"numpy"}))
    def test_scale_rows_matches_numpy(self, name):
        kernel = get_kernel(name)
        rng = np.random.default_rng(10)
        rows = rng.integers(0, 256, (9, 13), dtype=np.uint8)
        rows[3] = 0
        factors = rng.integers(0, 256, 9, dtype=np.uint8)
        factors[0] = 0
        factors[5] = 0
        assert np.array_equal(kernel.scale_rows(rows, factors), gf_scale_rows(rows, factors))
        zero_factors = np.zeros(9, dtype=np.uint8)
        assert np.array_equal(
            kernel.scale_rows(rows, zero_factors), gf_scale_rows(rows, zero_factors)
        )

    @pytest.mark.parametrize("name", sorted(available_kernels()))
    def test_shape_validation_preserved(self, name):
        kernel = get_kernel(name)
        with pytest.raises(ValueError):
            kernel.matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8))

    @pytest.mark.parametrize("name", sorted(available_kernels()))
    def test_lossy_decode_identical_across_kernels(self, name):
        source = source_block()
        baseline_encoder = BlockEncoder(source, context=CodecContext("planned", kernel="numpy"))
        rng = random.Random(4)
        kept = [esi for esi in range(K) if rng.random() > 0.3]
        repairs = list(range(K, K + (K - len(kept)) + 2))
        symbols = [(esi, baseline_encoder.symbol(esi)) for esi in kept + repairs]

        context = CodecContext("planned", kernel=name)
        encoder = BlockEncoder(source, context=context)
        for esi, _ in symbols:
            assert encoder.symbol(esi) == baseline_encoder.symbol(esi)
        decoder = BlockDecoder(K, SYMBOL_SIZE, context=context)
        for esi, data in symbols:
            decoder.add_symbol(esi, data)
        result = decoder.decode()
        assert result.success
        assert result.source_symbols == source


class TestCanonicalDecodeKeys:
    def test_missing_source_pattern(self):
        params = for_k(8)
        assert missing_source_pattern(params, [0, 1, 3, 4, 6, 7, 8, 9]) == (2, 5)
        assert missing_source_pattern(params, range(8)) == ()

    def test_candidates_widen_from_minimal_system(self):
        params = for_k(8)
        esis = [0, 1, 3, 4, 6, 7, 8, 9, 10, 11]  # missing {2, 5}, four repairs
        candidates = list(canonical_decode_candidates(params, esis))
        keys = [key for key, _ in candidates]
        used = [u for _, u in candidates]
        assert keys[0] == ("decode", params, (2, 5), (8, 9))
        assert used[0] == (0, 1, 3, 4, 6, 7, 8, 9)
        assert keys[-1] == ("decode", params, (2, 5), (8, 9, 10, 11))
        assert used[-1] == tuple(sorted(esis))
        assert len(candidates) == 3

    def test_key_ignores_surplus_repairs(self):
        params = for_k(8)
        lean, _ = canonical_decode_key(params, [0, 1, 3, 4, 6, 7, 8, 9])
        fat, _ = canonical_decode_key(params, [0, 1, 3, 4, 6, 7, 8, 9, 10, 11, 12])
        assert lean == fat

    def test_key_distinguishes_loss_patterns_and_repair_rows(self):
        params = for_k(8)
        one, _ = canonical_decode_key(params, [0, 1, 3, 4, 6, 7, 8, 9])
        other_pattern, _ = canonical_decode_key(params, [0, 1, 2, 4, 6, 7, 8, 9])
        other_repairs, _ = canonical_decode_key(params, [0, 1, 3, 4, 6, 7, 9, 10])
        assert one != other_pattern
        assert one != other_repairs

    def _lossy_sessions(self, encoder, patterns, surpluses):
        """(esis, symbols) per (pattern, surplus) combination, round-robin."""
        sessions = []
        for index, missing in enumerate(patterns * len(surpluses)):
            surplus = surpluses[index // len(patterns)]
            kept = [esi for esi in range(K) if esi not in missing]
            repairs = list(range(K, K + len(missing) + surplus))
            esis = kept + repairs
            sessions.append([(esi, encoder.symbol(esi)) for esi in esis])
        return sessions

    def test_canonical_hit_rate_strictly_beats_exact_keys_under_loss(self):
        """The acceptance check: >= 10% loss, counters from CodecContext."""
        encoder = BlockEncoder(source_block(), context=CodecContext("reference"))
        # Four recurring >=12.5% loss patterns (2-3 of 16 sources lost), each
        # seen with 0, 1 and 2 surplus repair symbols beyond the minimum.
        patterns = [(0, 1), (2, 9), (5, 11, 14), (3,)]
        sessions = self._lossy_sessions(encoder, patterns, surpluses=[2, 3, 4])

        source = source_block()
        rates = {}
        for canonical in (True, False):
            context = CodecContext("planned", canonical_decode_plans=canonical)
            for symbols in sessions:
                decoder = BlockDecoder(K, SYMBOL_SIZE, context=context)
                for esi, data in symbols:
                    decoder.add_symbol(esi, data)
                result = decoder.decode()
                assert result.success and result.used_gaussian_elimination
                assert result.source_symbols == source
            assert context.decode_stats.lookups > 0
            rates[canonical] = context.decode_stats.hit_rate
        assert rates[True] > rates[False], (
            f"canonical decode hit rate {rates[True]:.3f} must strictly beat "
            f"exact-ESI keying {rates[False]:.3f}"
        )

    def test_same_pattern_different_surplus_shares_one_plan(self):
        encoder = BlockEncoder(source_block(), context=CodecContext("reference"))
        context = CodecContext("planned")
        missing = (1, 7)
        for surplus in (2, 4):
            kept = [esi for esi in range(K) if esi not in missing]
            repairs = list(range(K, K + len(missing) + surplus))
            decoder = BlockDecoder(K, SYMBOL_SIZE, context=context)
            for esi in kept + repairs:
                decoder.add_symbol(esi, encoder.symbol(esi))
            assert decoder.decode().success
        # One decode-plan build total; the second, wider session hit it.
        assert context.decode_stats.misses <= 1 + context.decode_plan_retries
        assert context.decode_stats.hits >= 1

    def test_prewarmed_canonical_plan_covers_other_surpluses(self):
        source = source_block(seed=5)
        encoder = BlockEncoder(source, context=CodecContext("reference"))
        missing = (0, 4)
        kept = [esi for esi in range(K) if esi not in missing]
        # Prewarm from a session with 3 surplus repairs...
        warm_esis = kept + list(range(K, K + len(missing) + 3))
        store = prewarm_decode_plans(K, [warm_esis])
        context = CodecContext("planned", preload=store)
        # ... and decode a session with zero surplus: same canonical plan.
        decoder = BlockDecoder(K, SYMBOL_SIZE, context=context)
        for esi in kept + list(range(K, K + len(missing))):
            decoder.add_symbol(esi, encoder.symbol(esi))
        result = decoder.decode()
        assert result.success
        assert result.source_symbols == source
        if context.decode_plan_retries == 0:
            assert context.decode_stats.misses == 0
            assert context.decode_stats.hits == 1

    def test_exact_keying_still_selectable(self):
        encoder = BlockEncoder(source_block(), context=CodecContext("reference"))
        context = CodecContext("planned", canonical_decode_plans=False)
        esis = list(range(2, K)) + [K, K + 1]
        decoder = BlockDecoder(K, SYMBOL_SIZE, context=context)
        for esi in esis:
            decoder.add_symbol(esi, encoder.symbol(esi))
        assert decoder.decode().success
        assert context.decode_stats.misses == 1
