"""Tests for the block encoder and decoder (the heart of the codec)."""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.rq.decoder import BlockDecoder, DecodeFailure
from repro.rq.encoder import BlockEncoder
from repro.rq.params import for_k


def random_block(k: int, symbol_size: int, seed: int = 0) -> list[bytes]:
    rng = random.Random(seed)
    return [bytes(rng.getrandbits(8) for _ in range(symbol_size)) for _ in range(k)]


@pytest.fixture(scope="module")
def encoder_32() -> BlockEncoder:
    """A shared encoder for a 32-symbol block (expensive to build)."""
    return BlockEncoder(random_block(32, 48, seed=1))


class TestEncoderConstruction:
    def test_rejects_empty_block(self):
        with pytest.raises(ValueError):
            BlockEncoder([])

    def test_rejects_unequal_symbol_sizes(self):
        with pytest.raises(ValueError):
            BlockEncoder([b"aaaa", b"bb"])

    def test_rejects_empty_symbols(self):
        with pytest.raises(ValueError):
            BlockEncoder([b"", b""])

    def test_rejects_mismatched_params(self):
        params = for_k(8)
        with pytest.raises(ValueError):
            BlockEncoder(random_block(16, 8), params=params)

    def test_num_source_symbols(self, encoder_32):
        assert encoder_32.num_source_symbols == 32


class TestSystematicProperty:
    def test_source_esis_reproduce_source_symbols(self, encoder_32):
        for esi in range(32):
            assert encoder_32.symbol(esi) == encoder_32.source_symbol(esi)

    def test_lt_encoding_of_source_esis_matches(self, encoder_32):
        # The defining systematic property: LT-encoding ISI i yields source symbol i.
        for esi in range(32):
            assert encoder_32.encoded_symbol_via_lt(esi) == encoder_32.source_symbol(esi)

    def test_source_symbol_out_of_range(self, encoder_32):
        with pytest.raises(IndexError):
            encoder_32.source_symbol(32)

    def test_repair_symbol_below_k_rejected(self, encoder_32):
        with pytest.raises(ValueError):
            encoder_32.repair_symbol(5)

    def test_repair_symbols_deterministic(self, encoder_32):
        assert encoder_32.repair_symbol(40) == encoder_32.repair_symbol(40)

    def test_repair_symbols_differ_from_each_other(self, encoder_32):
        symbols = {encoder_32.repair_symbol(esi) for esi in range(32, 64)}
        assert len(symbols) == 32


class TestDecoder:
    def test_all_source_symbols_fast_path(self, encoder_32):
        decoder = BlockDecoder(32, 48)
        for esi in range(32):
            decoder.add_symbol(esi, encoder_32.symbol(esi))
        result = decoder.decode()
        assert result.success
        assert not result.used_gaussian_elimination
        assert result.source_symbols == [encoder_32.source_symbol(i) for i in range(32)]

    def test_repair_only_decode(self, encoder_32):
        decoder = BlockDecoder(32, 48)
        for esi in range(32, 32 + 34):
            decoder.add_symbol(esi, encoder_32.symbol(esi))
        result = decoder.decode()
        assert result.success
        assert result.used_gaussian_elimination
        assert result.source_symbols == [encoder_32.source_symbol(i) for i in range(32)]

    def test_mixed_source_and_repair(self, encoder_32):
        decoder = BlockDecoder(32, 48)
        # Lose a quarter of the source symbols, compensate with repair + overhead.
        kept = [esi for esi in range(32) if esi % 4 != 0]
        for esi in kept:
            decoder.add_symbol(esi, encoder_32.symbol(esi))
        needed = 32 - len(kept) + 2
        for esi in range(100, 100 + needed):
            decoder.add_symbol(esi, encoder_32.symbol(esi))
        assert decoder.decode().success

    def test_insufficient_symbols_reported(self, encoder_32):
        decoder = BlockDecoder(32, 48)
        for esi in range(10):
            decoder.add_symbol(esi, encoder_32.symbol(esi))
        result = decoder.decode()
        assert not result.success
        assert not decoder.can_attempt_decode()

    def test_decode_or_raise_on_failure(self, encoder_32):
        decoder = BlockDecoder(32, 48)
        with pytest.raises(DecodeFailure):
            decoder.decode_or_raise()

    def test_duplicate_symbols_ignored(self, encoder_32):
        decoder = BlockDecoder(32, 48)
        assert decoder.add_symbol(0, encoder_32.symbol(0)) is True
        assert decoder.add_symbol(0, encoder_32.symbol(0)) is False
        assert decoder.symbols_received == 1

    def test_wrong_symbol_size_rejected(self):
        decoder = BlockDecoder(8, 16)
        with pytest.raises(ValueError):
            decoder.add_symbol(0, b"too-short")

    def test_negative_esi_rejected(self):
        decoder = BlockDecoder(8, 4)
        with pytest.raises(ValueError):
            decoder.add_symbol(-1, b"\x00" * 4)

    def test_missing_source_symbols_listed(self, encoder_32):
        decoder = BlockDecoder(32, 48)
        decoder.add_symbol(3, encoder_32.symbol(3))
        missing = decoder.missing_source_symbols()
        assert 3 not in missing
        assert len(missing) == 31

    def test_decode_result_data_property(self, encoder_32):
        decoder = BlockDecoder(32, 48)
        for esi in range(32):
            decoder.add_symbol(esi, encoder_32.symbol(esi))
        result = decoder.decode()
        assert result.data == b"".join(encoder_32.source_symbol(i) for i in range(32))

    def test_overhead_bookkeeping(self, encoder_32):
        decoder = BlockDecoder(32, 48)
        for esi in range(35):
            decoder.add_symbol(esi if esi < 32 else esi + 100, encoder_32.symbol(esi if esi < 32 else esi + 100))
        result = decoder.decode()
        assert result.symbols_received == 35
        assert result.overhead == 3


class TestRoundtripProperties:
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        k=st.integers(min_value=4, max_value=24),
        symbol_size=st.integers(min_value=1, max_value=64),
        loss_seed=st.integers(min_value=0, max_value=1000),
    )
    def test_decode_recovers_source_with_random_losses(self, k, symbol_size, loss_seed):
        """Any K+2 distinct symbols decode back to the original block."""
        source = random_block(k, symbol_size, seed=loss_seed)
        encoder = BlockEncoder(source)
        rng = random.Random(loss_seed)
        kept_sources = [esi for esi in range(k) if rng.random() > 0.3]
        decoder = BlockDecoder(k, symbol_size)
        for esi in kept_sources:
            decoder.add_symbol(esi, encoder.symbol(esi))
        repair_needed = k + 2 - len(kept_sources)
        start = k + rng.randint(0, 50)
        for esi in range(start, start + repair_needed):
            decoder.add_symbol(esi, encoder.symbol(esi))
        result = decoder.decode()
        assert result.success
        assert result.source_symbols == source

    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.binary(min_size=1, max_size=400))
    def test_arbitrary_bytes_roundtrip(self, data):
        """Encoding and decoding arbitrary (padded) content is lossless."""
        symbol_size = 16
        padded = data + b"\x00" * ((-len(data)) % symbol_size)
        symbols = [padded[i : i + symbol_size] for i in range(0, len(padded), symbol_size)]
        while len(symbols) < 4:
            symbols.append(b"\x00" * symbol_size)
        encoder = BlockEncoder(symbols)
        decoder = BlockDecoder(len(symbols), symbol_size)
        # Deliver everything as repair symbols only.
        for esi in range(len(symbols), 2 * len(symbols) + 2):
            decoder.add_symbol(esi, encoder.symbol(esi))
        assert decoder.decode().source_symbols == symbols


class TestDecodeFailureProbability:
    def test_exact_k_symbols_almost_always_decode(self):
        """With the dense HDPC rows, even zero-overhead decoding almost never fails."""
        k, symbol_size = 16, 8
        encoder = BlockEncoder(random_block(k, symbol_size, seed=3))
        failures = 0
        trials = 25
        rng = random.Random(9)
        for _ in range(trials):
            decoder = BlockDecoder(k, symbol_size)
            esis = rng.sample(range(150), k)
            for esi in esis:
                decoder.add_symbol(esi, encoder.symbol(esi))
            if not decoder.decode().success:
                failures += 1
        assert failures <= 2

    def test_k_plus_two_never_fails_in_sample(self):
        k, symbol_size = 16, 8
        encoder = BlockEncoder(random_block(k, symbol_size, seed=4))
        rng = random.Random(11)
        for _ in range(25):
            decoder = BlockDecoder(k, symbol_size)
            esis = rng.sample(range(200), k + 2)
            for esi in esis:
                decoder.add_symbol(esi, encoder.symbol(esi))
            assert decoder.decode().success
