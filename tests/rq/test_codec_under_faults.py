"""Codec coverage under fault-shaped loss: the test-debt satellite for PR 3/4.

Seeded randomized encode/decode round-trip property tests across every GF
kernel available on this platform (``numpy``/``blocked`` always, ``numba``
when importable) at 0-30% symbol loss -- the loss regime the fault and
gray-failure models produce -- asserting byte-identical recovery on every
kernel and that canonical decode-plan keys turn repeated loss patterns into
cache hits.  Plus a regression test for the ``plan_store_for_jobs``
schema-v2 warn+rebuild path (PR 4's satellite fix).
"""

from __future__ import annotations

import pickle
import random

import numpy as np
import pytest

from repro.rq.api import decode_object, encode_object
from repro.rq.backend import CodecContext, prewarm_encode_plans
from repro.rq.decoder import BlockDecoder
from repro.rq.encoder import BlockEncoder
from repro.rq.kernels import available_kernels
from repro.rq.plan import PLAN_STORE_SCHEMA, PlanStore

SYMBOL_SIZE = 48
OBJECT_BYTES = 4000  # several blocks at max_symbols_per_block=32
MAX_SYMBOLS_PER_BLOCK = 32

#: (loss fraction, seed) pairs spanning the fault models' loss regime:
#: healthy, gray-failure-grade trickle, and heavy correlated damage.
LOSS_CASES = [(0.0, 101), (0.1, 102), (0.3, 103)]


def _object_bytes(seed: int = 5) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, OBJECT_BYTES, dtype=np.uint8).tobytes()


def _lossy_subset(symbols, loss: float, rng: random.Random, min_keep_per_block: dict):
    """Drop each symbol with probability ``loss``, keeping blocks decodable.

    Deterministic: the Bernoulli draws come from the caller's seeded rng;
    if a block ends up below its decodability floor, dropped symbols are
    restored in transmission order (exactly what retransmitted repair
    symbols do in the live protocol).
    """
    kept, dropped = [], []
    for symbol in symbols:
        (dropped if rng.random() < loss else kept).append(symbol)
    counts: dict[int, int] = {}
    for symbol in kept:
        counts[symbol.block_number] = counts.get(symbol.block_number, 0) + 1
    for symbol in dropped:
        block = symbol.block_number
        if counts.get(block, 0) < min_keep_per_block[block]:
            kept.append(symbol)
            counts[block] = counts.get(block, 0) + 1
    return kept


@pytest.mark.parametrize("kernel", available_kernels())
@pytest.mark.parametrize("loss,seed", LOSS_CASES)
class TestRoundTripUnderLoss:
    def test_object_recovers_byte_identically(self, kernel, loss, seed):
        data = _object_bytes()
        context = CodecContext("planned", kernel=kernel)
        oti, symbols = encode_object(
            data, symbol_size=SYMBOL_SIZE,
            repair_symbols_per_block=MAX_SYMBOLS_PER_BLOCK,  # 100% overhead budget
            max_symbols_per_block=MAX_SYMBOLS_PER_BLOCK, context=context,
        )
        assert oti.num_source_blocks >= 3  # the multi-block regime transfers hit
        floors = {
            block: oti.block_symbol_count(block) + 2
            for block in range(oti.num_source_blocks)
        }
        received = _lossy_subset(symbols, loss, random.Random(seed), floors)
        if loss > 0:
            assert len(received) < len(symbols)  # loss actually struck
        recovered = decode_object(oti, received, context=context)
        assert recovered == data

    def test_kernels_agree_on_the_same_loss_pattern(self, kernel, loss, seed):
        """Every kernel recovers the identical bytes from the identical
        surviving symbol set (GF(256) arithmetic is exact)."""
        data = _object_bytes(seed=7)
        reference_context = CodecContext("planned", kernel="numpy")
        oti, symbols = encode_object(
            data, symbol_size=SYMBOL_SIZE,
            repair_symbols_per_block=MAX_SYMBOLS_PER_BLOCK,
            max_symbols_per_block=MAX_SYMBOLS_PER_BLOCK, context=reference_context,
        )
        floors = {
            block: oti.block_symbol_count(block) + 2
            for block in range(oti.num_source_blocks)
        }
        received = _lossy_subset(symbols, loss, random.Random(seed), floors)
        context = CodecContext("planned", kernel=kernel)
        assert decode_object(oti, received, context=context) == \
            decode_object(oti, received, context=reference_context) == data

    def test_encoded_symbols_identical_across_kernels(self, kernel, loss, seed):
        del loss, seed  # encoding is loss-independent; parametrised for sweep shape
        data = _object_bytes(seed=9)
        reference = encode_object(
            data, symbol_size=SYMBOL_SIZE, repair_symbols_per_block=4,
            max_symbols_per_block=MAX_SYMBOLS_PER_BLOCK,
            context=CodecContext("planned", kernel="numpy"),
        )[1]
        under_test = encode_object(
            data, symbol_size=SYMBOL_SIZE, repair_symbols_per_block=4,
            max_symbols_per_block=MAX_SYMBOLS_PER_BLOCK,
            context=CodecContext("planned", kernel=kernel),
        )[1]
        assert [(s.block_number, s.esi, s.data) for s in reference] == \
            [(s.block_number, s.esi, s.data) for s in under_test]


class TestCanonicalPlansUnderLoss:
    K = 16

    def _sources(self, seed: int) -> list[bytes]:
        rng = np.random.default_rng(seed)
        return [
            rng.integers(0, 256, SYMBOL_SIZE, dtype=np.uint8).tobytes()
            for _ in range(self.K)
        ]

    @pytest.mark.parametrize("kernel", available_kernels())
    def test_same_missing_pattern_hits_across_surplus_counts(self, kernel):
        """Blocks that lost the same source symbols share one decode plan no
        matter how many surplus repair symbols each received -- the
        canonical-key property that keeps the cache warm under loss."""
        context = CodecContext("planned", kernel=kernel)
        lost = (0, 3)  # the same two source symbols vanish from every block
        for round_number, surplus in enumerate((0, 2, 4)):
            sources = self._sources(seed=20 + round_number)
            encoder = BlockEncoder(sources, context=context)
            esis = tuple(
                esi for esi in range(self.K) if esi not in lost
            ) + tuple(range(self.K, self.K + len(lost) + surplus))
            decoder = BlockDecoder(self.K, SYMBOL_SIZE, context=context)
            for esi in esis:
                decoder.add_symbol(esi, encoder.symbol(esi))
            result = decoder.decode()
            assert result.success
            assert result.source_symbols == sources
        # First block pays the (single) decode-plan miss; the other two,
        # with different surplus, ride the same canonical plan.
        assert context.decode_stats.misses == 1
        assert context.decode_stats.hits == 2

    def test_exact_keying_pays_per_surplus_count(self):
        """Control: legacy exact-ESI keys rebuild a plan per surplus count."""
        context = CodecContext("planned", canonical_decode_plans=False)
        lost = (0, 3)
        for round_number, surplus in enumerate((0, 2, 4)):
            sources = self._sources(seed=30 + round_number)
            encoder = BlockEncoder(sources, context=context)
            esis = tuple(
                esi for esi in range(self.K) if esi not in lost
            ) + tuple(range(self.K, self.K + len(lost) + surplus))
            decoder = BlockDecoder(self.K, SYMBOL_SIZE, context=context)
            for esi in esis:
                decoder.add_symbol(esi, encoder.symbol(esi))
            assert decoder.decode().success
        assert context.decode_stats.misses == 3
        assert context.decode_stats.hits == 0


class TestPlanStoreSchemaRegression:
    """Regression: ``plan_store_for_jobs`` warns and rebuilds on any store
    whose schema is not the current v2 -- both the pre-versioning v1 shape
    (covered in test_parallel) and a *future* schema, which this pins."""

    def _payload_jobs(self):
        from dataclasses import replace as dc_replace

        from repro.core.config import PolyraptorConfig
        from repro.experiments.config import ExperimentConfig, Protocol
        from repro.experiments.parallel import RunJob
        from repro.workloads.spec import TransferKind, TransferSpec

        config = dc_replace(
            ExperimentConfig.quick(),
            polyraptor=PolyraptorConfig(carry_payload=True),
        )
        spec = TransferSpec(
            transfer_id=1, kind=TransferKind.UNICAST, client="h0",
            peers=("h15",), size_bytes=8 * 1024, start_time=0.0,
        )
        return [RunJob(key=(1,), protocol=Protocol.POLYRAPTOR,
                       config=config, transfers=(spec,))]

    def test_current_schema_cache_loads_silently(self, tmp_path):
        import warnings

        from repro.experiments.parallel import plan_store_for_jobs, set_plan_cache_path

        path = tmp_path / "plans.pkl"
        prewarm_encode_plans([11]).save(path)
        assert PlanStore.load(path).schema == PLAN_STORE_SCHEMA == 2
        set_plan_cache_path(path)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # any warning fails the test
                store = plan_store_for_jobs(self._payload_jobs())
        finally:
            set_plan_cache_path(None)
        assert store is not None and len(store) >= 1

    def test_future_schema_cache_warns_and_is_rebuilt(self, tmp_path):
        from repro.experiments.parallel import plan_store_for_jobs, set_plan_cache_path

        stale = prewarm_encode_plans([11])
        stale.schema = PLAN_STORE_SCHEMA + 1  # written by a future release
        path = tmp_path / "plans.pkl"
        path.write_bytes(pickle.dumps(stale, protocol=pickle.HIGHEST_PROTOCOL))
        set_plan_cache_path(path)
        try:
            with pytest.warns(RuntimeWarning, match="discarding plan cache"):
                store = plan_store_for_jobs(self._payload_jobs())
        finally:
            set_plan_cache_path(None)
        assert store is not None and len(store) >= 1
        assert PlanStore.load(path).schema == PLAN_STORE_SCHEMA
