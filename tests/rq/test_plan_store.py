"""Tests for the picklable PlanStore and plan pre-warming.

The store is the artifact that lets sharded experiment runs share one set of
elimination plans: these tests pin down the save/load round-trip, the
cache <-> store conversions and the guarantee that a preloaded context
produces byte-identical symbols with zero misses.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.rq.backend import (
    CodecContext,
    prewarm_decode_plans,
    prewarm_encode_plans,
)
from repro.rq.decoder import BlockDecoder
from repro.rq.encoder import BlockEncoder
from repro.rq.params import for_k
from repro.rq.plan import (
    PLAN_STORE_SCHEMA,
    PlanCache,
    PlanStore,
    PlanStoreSchemaError,
)

K = 16
SYMBOL_SIZE = 32


def _source_symbols(seed: int = 3):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, SYMBOL_SIZE, dtype=np.uint8).tobytes() for _ in range(K)]


class TestPlanStoreRoundTrip:
    def test_save_load_preserves_plans(self, tmp_path):
        store = prewarm_encode_plans([K])
        path = store.save(tmp_path / "plans.pkl")
        loaded = PlanStore.load(path)
        assert set(loaded.plans) == set(store.plans)
        for key, plan in store.plans.items():
            other = loaded.plans[key]
            assert other.num_rows == plan.num_rows
            assert other.num_unknowns == plan.num_unknowns
            assert np.array_equal(other.operator, plan.operator)

    def test_loaded_operators_are_read_only(self, tmp_path):
        store = prewarm_encode_plans([K])
        loaded = PlanStore.load(store.save(tmp_path / "plans.pkl"))
        plan = next(iter(loaded.plans.values()))
        assert not plan.operator.flags.writeable

    def test_bytes_round_trip(self):
        store = prewarm_encode_plans([K])
        assert len(PlanStore.from_bytes(store.to_bytes())) == len(store)

    def test_from_bytes_rejects_other_objects(self):
        with pytest.raises(TypeError):
            PlanStore.from_bytes(pickle.dumps({"not": "a store"}))

    def test_store_records_current_schema(self):
        assert PlanStore().schema == PLAN_STORE_SCHEMA
        assert prewarm_encode_plans([K]).schema == PLAN_STORE_SCHEMA

    def test_other_schema_rejected_cleanly(self):
        store = prewarm_encode_plans([K])
        store.schema = PLAN_STORE_SCHEMA + 1
        with pytest.raises(PlanStoreSchemaError, match="schema"):
            PlanStore.from_bytes(store.to_bytes())

    def test_legacy_unversioned_pickle_rejected(self, tmp_path):
        # Stores written before versioning carried no schema field at all;
        # they restore as schema 1 and must be refused, not served.
        store = prewarm_encode_plans([K])
        del store.__dict__["schema"]
        path = tmp_path / "legacy.pkl"
        path.write_bytes(pickle.dumps(store, protocol=pickle.HIGHEST_PROTOCOL))
        with pytest.raises(PlanStoreSchemaError, match="v1"):
            PlanStore.load(path)

    def test_merge_keeps_existing_plans(self):
        first = prewarm_encode_plans([K])
        second = prewarm_encode_plans([K, K + 1])
        original = first.plans[("encode", for_k(K))]
        first.merge(second)
        assert len(first) == 2
        assert first.plans[("encode", for_k(K))] is original


class TestCacheStoreConversions:
    def test_snapshot_contains_lazily_built_plans(self):
        context = CodecContext("planned")
        BlockEncoder(_source_symbols(), context=context)
        store = context.snapshot_plans()
        assert ("encode", for_k(K)) in store

    def test_prewarm_matches_lazily_built_keys(self):
        context = CodecContext("planned")
        BlockEncoder(_source_symbols(), context=context)
        lazy = context.snapshot_plans()
        warmed = prewarm_encode_plans([K])
        assert set(warmed.plans) == set(lazy.plans)
        for key in warmed.plans:
            assert np.array_equal(warmed.plans[key].operator, lazy.plans[key].operator)

    def test_preload_counts_neither_hits_nor_misses(self):
        context = CodecContext("planned", preload=prewarm_encode_plans([K]))
        assert context.stats.hits == 0
        assert context.stats.misses == 0
        assert context.cached_plans == 1

    def test_preloaded_context_encodes_with_zero_misses(self):
        source = _source_symbols()
        cold = CodecContext("planned")
        cold_encoder = BlockEncoder(source, context=cold)
        warm = CodecContext("planned", preload=prewarm_encode_plans([K]))
        warm_encoder = BlockEncoder(source, context=warm)
        assert cold.stats.misses == 1
        assert warm.stats.misses == 0
        assert warm.stats.hits == 1
        esis = list(range(K + 4))
        assert np.array_equal(cold_encoder.symbol_block(esis),
                              warm_encoder.symbol_block(esis))

    def test_plan_cache_preload_respects_capacity(self):
        cache = PlanCache(max_entries=1)
        inserted = cache.preload(prewarm_encode_plans([K, K + 1, K + 2]))
        assert inserted == 3
        assert len(cache) == 1
        assert cache.evictions == 2


class TestDecodePrewarm:
    def test_prewarmed_decode_plan_hits_and_decodes(self):
        source = _source_symbols(seed=9)
        encoder = BlockEncoder(source)
        # Lose the first two source symbols; receive two repair symbols.
        esis = tuple(range(2, K)) + (K, K + 1)
        store = prewarm_decode_plans(K, [esis])
        context = CodecContext("planned", preload=store)
        decoder = BlockDecoder(K, SYMBOL_SIZE, context=context)
        for esi in esis:
            decoder.add_symbol(esi, encoder.symbol(esi))
        result = decoder.decode()
        assert result.success
        assert result.source_symbols == source
        assert context.stats.misses == 0
        assert context.stats.hits == 1

    def test_store_reusable_across_contexts(self):
        store = prewarm_encode_plans([K])
        for _ in range(2):
            context = CodecContext("planned", preload=store)
            BlockEncoder(_source_symbols(), context=context)
            assert context.stats.misses == 0
