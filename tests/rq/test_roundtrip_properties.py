"""Property-based round-trips for the object-level RQ codec.

Hypothesis drives :class:`~repro.rq.block.ObjectEncoder` /
:class:`~repro.rq.block.ObjectDecoder` through randomly sized objects,
random loss patterns and random repair choices, asserting the decoded
bytes always equal the original.  Example counts are kept small -- each
example runs a full Gaussian elimination -- but the generators cover the
boundaries (1-byte objects, exact multiples of the symbol size, the
splitting threshold into multiple blocks) that fixed-value tests miss.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.rq.block import (  # noqa: E402
    ObjectDecoder,
    ObjectEncoder,
    partition_object,
)

#: Small symbols keep elimination cheap; MIN_SOURCE_SYMBOLS is 4 so even a
#: 1-byte object becomes a 4-symbol block.
SYMBOL_SIZE = 16
MAX_SYMBOLS_PER_BLOCK = 8  # force multi-block objects early

COMMON = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _object_bytes(draw, max_size=400):
    size = draw(st.integers(min_value=1, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    # A seeded byte pattern, cheaper for hypothesis to shrink than st.binary
    # of equivalent size and just as good at catching mixing bugs.
    return bytes((seed + i * 131) % 251 for i in range(size))


@settings(**COMMON)
@given(data=st.data())
def test_source_symbols_alone_round_trip(data):
    payload = _object_bytes(data.draw)
    encoder = ObjectEncoder(payload, symbol_size=SYMBOL_SIZE,
                            max_symbols_per_block=MAX_SYMBOLS_PER_BLOCK)
    decoder = ObjectDecoder(encoder.oti)
    for block in range(encoder.num_blocks):
        k = encoder.oti.block_symbol_count(block)
        decoder.add_symbols(encoder.symbol_block(block, range(k)))
    assert decoder.decode() == payload


@settings(**COMMON)
@given(data=st.data())
def test_round_trip_survives_random_source_loss(data):
    payload = _object_bytes(data.draw)
    encoder = ObjectEncoder(payload, symbol_size=SYMBOL_SIZE,
                            max_symbols_per_block=MAX_SYMBOLS_PER_BLOCK)
    decoder = ObjectDecoder(encoder.oti)
    overhead = 2
    for block in range(encoder.num_blocks):
        k = encoder.oti.block_symbol_count(block)
        lost = data.draw(
            st.sets(st.integers(min_value=0, max_value=k - 1), max_size=k),
            label=f"lost source ESIs of block {block}",
        )
        esis = [esi for esi in range(k) if esi not in lost]
        # Replace every loss with repair symbols, plus the RFC 6330 overhead
        # the protocol always collects when at least one source symbol died.
        if lost:
            esis += list(range(k, k + len(lost) + overhead))
        decoder.add_symbols(encoder.symbol_block(block, esis))
    assert decoder.decode() == payload


@settings(**COMMON)
@given(data=st.data())
def test_repair_only_round_trip(data):
    """No source symbol survives at all: K + overhead repair symbols must
    still reconstruct every block."""
    payload = _object_bytes(data.draw, max_size=120)
    encoder = ObjectEncoder(payload, symbol_size=SYMBOL_SIZE,
                            max_symbols_per_block=MAX_SYMBOLS_PER_BLOCK)
    decoder = ObjectDecoder(encoder.oti)
    overhead = 2
    for block in range(encoder.num_blocks):
        k = encoder.oti.block_symbol_count(block)
        start = data.draw(st.integers(min_value=k, max_value=k + 50),
                          label=f"first repair ESI of block {block}")
        decoder.add_symbols(
            encoder.symbol_block(block, range(start, start + k + overhead))
        )
    assert decoder.decode() == payload


@settings(**COMMON)
@given(data=st.data())
def test_batched_and_single_symbol_encoding_agree(data):
    payload = _object_bytes(data.draw, max_size=200)
    encoder = ObjectEncoder(payload, symbol_size=SYMBOL_SIZE,
                            max_symbols_per_block=MAX_SYMBOLS_PER_BLOCK)
    block = data.draw(st.integers(min_value=0, max_value=encoder.num_blocks - 1))
    k = encoder.oti.block_symbol_count(block)
    esis = data.draw(
        st.lists(st.integers(min_value=0, max_value=k + 20),
                 min_size=1, max_size=10),
        label="esis",
    )
    batched = encoder.symbol_block(block, esis)
    singles = [encoder.symbol(block, esi) for esi in esis]
    assert batched == singles


@settings(max_examples=50, deadline=None)
@given(
    transfer_length=st.integers(min_value=1, max_value=10_000),
    symbol_size=st.sampled_from([1, 7, 16, 64, 1408]),
    max_symbols=st.integers(min_value=4, max_value=256),
)
def test_partition_covers_the_object_exactly(transfer_length, symbol_size, max_symbols):
    oti = partition_object(transfer_length, symbol_size, max_symbols)
    assert oti.num_source_blocks == len(oti.symbols_per_block)
    assert all(count >= 4 for count in oti.symbols_per_block)  # MIN_SOURCE_SYMBOLS
    # Symbols cover the payload (padding allowed, truncation never).
    assert oti.total_source_symbols * symbol_size >= transfer_length
    # Balanced split: block sizes differ by at most one symbol.
    assert max(oti.symbols_per_block) - min(oti.symbols_per_block) <= 1
