"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.agent import PolyraptorAgent
from repro.core.config import PolyraptorConfig
from repro.network.network import Network, NetworkConfig
from repro.network.routing import RoutingMode
from repro.network.topology import FatTreeTopology
from repro.rq.backend import CodecContext
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.transport.base import TransferRegistry
from repro.transport.tcp.agent import TcpAgent
from repro.transport.tcp.config import TcpConfig


class PolyraptorTestbed:
    """A small FatTree with Polyraptor agents on every host."""

    def __init__(self, seed: int = 1, config: PolyraptorConfig | None = None,
                 network_config: NetworkConfig | None = None, k: int = 4) -> None:
        self.sim = Simulator()
        self.topology = FatTreeTopology(k)
        self.network = Network(
            self.sim,
            self.topology,
            network_config or NetworkConfig(),
            RandomStreams(seed),
        )
        self.registry = TransferRegistry()
        self.config = config or PolyraptorConfig()
        self.codec = CodecContext(self.config.codec_backend)
        self.agents = {
            host.name: PolyraptorAgent(self.sim, host, self.config, self.registry,
                                       codec_context=self.codec)
            for host in self.network.hosts
        }

    def host_id(self, name: str) -> int:
        return self.network.host_id(name)

    def run(self, until: float = 5.0) -> None:
        self.sim.run(until=until)


class TcpTestbed:
    """A small FatTree with TCP agents on every host (drop-tail + ECMP)."""

    def __init__(self, seed: int = 1, config: TcpConfig | None = None, k: int = 4) -> None:
        self.sim = Simulator()
        self.topology = FatTreeTopology(k)
        self.network = Network(
            self.sim,
            self.topology,
            NetworkConfig(switch_queue="droptail", routing_mode=RoutingMode.ECMP_FLOW),
            RandomStreams(seed),
        )
        self.registry = TransferRegistry()
        self.config = config or TcpConfig()
        self.agents = {
            host.name: TcpAgent(self.sim, host, self.config, self.registry)
            for host in self.network.hosts
        }

    def host_id(self, name: str) -> int:
        return self.network.host_id(name)

    def run(self, until: float = 5.0) -> None:
        self.sim.run(until=until)


@pytest.fixture
def polyraptor_testbed() -> PolyraptorTestbed:
    """A fresh 16-host Polyraptor testbed."""
    return PolyraptorTestbed()


@pytest.fixture
def tcp_testbed() -> TcpTestbed:
    """A fresh 16-host TCP testbed."""
    return TcpTestbed()
