"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

try:  # hypothesis is an optional test dependency (the rq property tests skip
    # without it); when present, keep its on-disk state (example database,
    # constants cache) out of the repo: no stray ``.hypothesis/`` after a run.
    import tempfile

    from hypothesis import configuration as _hypothesis_configuration
    from hypothesis import settings as _hypothesis_settings

    _hypothesis_configuration.set_hypothesis_home_dir(
        tempfile.mkdtemp(prefix="hypothesis-home-")
    )
    _hypothesis_settings.register_profile("repro", database=None)
    _hypothesis_settings.load_profile("repro")
except ImportError:  # pragma: no cover
    pass

from repro.core.agent import PolyraptorAgent
from repro.core.config import PolyraptorConfig
from repro.network.network import Network, NetworkConfig
from repro.network.routing import RoutingMode
from repro.network.topology import FatTreeTopology
from repro.rq.backend import CodecContext
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.transport.base import TransferRegistry
from repro.transport.tcp.agent import TcpAgent
from repro.transport.tcp.config import TcpConfig


class PolyraptorTestbed:
    """A small FatTree with Polyraptor agents on every host."""

    def __init__(self, seed: int = 1, config: PolyraptorConfig | None = None,
                 network_config: NetworkConfig | None = None, k: int = 4) -> None:
        self.sim = Simulator()
        self.topology = FatTreeTopology(k)
        self.network = Network(
            self.sim,
            self.topology,
            network_config or NetworkConfig(),
            RandomStreams(seed),
        )
        self.registry = TransferRegistry()
        self.config = config or PolyraptorConfig()
        self.codec = CodecContext(self.config.codec_backend)
        self.agents = {
            host.name: PolyraptorAgent(self.sim, host, self.config, self.registry,
                                       codec_context=self.codec)
            for host in self.network.hosts
        }

    def host_id(self, name: str) -> int:
        return self.network.host_id(name)

    def run(self, until: float = 5.0) -> None:
        self.sim.run(until=until)


class TcpTestbed:
    """A small FatTree with TCP agents on every host (drop-tail + ECMP)."""

    def __init__(self, seed: int = 1, config: TcpConfig | None = None, k: int = 4) -> None:
        self.sim = Simulator()
        self.topology = FatTreeTopology(k)
        self.network = Network(
            self.sim,
            self.topology,
            NetworkConfig(switch_queue="droptail", routing_mode=RoutingMode.ECMP_FLOW),
            RandomStreams(seed),
        )
        self.registry = TransferRegistry()
        self.config = config or TcpConfig()
        self.agents = {
            host.name: TcpAgent(self.sim, host, self.config, self.registry)
            for host in self.network.hosts
        }

    def host_id(self, name: str) -> int:
        return self.network.host_id(name)

    def run(self, until: float = 5.0) -> None:
        self.sim.run(until=until)


@pytest.fixture(autouse=True)
def _isolated_home(tmp_path_factory, monkeypatch):
    """Point ``Path.home()`` at a per-session temp dir.

    Anything that resolves ``~/.cache/repro`` (the persistent plan cache,
    via :func:`repro.experiments.parallel.default_plan_cache_path`) then
    reads and writes inside pytest's temp tree instead of the real home
    directory, so test runs leave no stray state behind.
    """
    home = tmp_path_factory.getbasetemp() / "home"
    home.mkdir(exist_ok=True)
    monkeypatch.setenv("HOME", str(home))
    monkeypatch.setenv("USERPROFILE", str(home))  # Path.home() on Windows


@pytest.fixture
def polyraptor_testbed() -> PolyraptorTestbed:
    """A fresh 16-host Polyraptor testbed."""
    return PolyraptorTestbed()


@pytest.fixture
def tcp_testbed() -> TcpTestbed:
    """A fresh 16-host TCP testbed."""
    return TcpTestbed()
