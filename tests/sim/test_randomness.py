"""Tests for named seeded random streams."""

import pytest

from repro.sim.randomness import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRandomStreams:
    def test_same_stream_object_returned(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_reproducible_across_instances(self):
        a = RandomStreams(3)
        b = RandomStreams(3)
        assert [a.stream("s").random() for _ in range(5)] == [
            b.stream("s").random() for _ in range(5)
        ]

    def test_streams_are_independent(self):
        streams = RandomStreams(3)
        # Drawing from one stream must not perturb another.
        before = RandomStreams(3).stream("b").random()
        streams.stream("a").random()
        assert streams.stream("b").random() == before

    def test_spawn_creates_distinct_namespace(self):
        parent = RandomStreams(5)
        child = parent.spawn("child")
        assert child.master_seed != parent.master_seed
        assert child.stream("x").random() != parent.stream("x").random()

    def test_uniform_in_range(self):
        streams = RandomStreams(1)
        for _ in range(100):
            value = streams.uniform("u", 2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_exponential_positive_and_mean(self):
        streams = RandomStreams(1)
        samples = [streams.exponential("e", 100.0) for _ in range(2000)]
        assert all(sample > 0 for sample in samples)
        assert sum(samples) / len(samples) == pytest.approx(0.01, rel=0.2)

    def test_exponential_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            RandomStreams(1).exponential("e", 0)

    def test_choice_and_sample(self):
        streams = RandomStreams(2)
        options = ["a", "b", "c", "d"]
        assert streams.choice("c", options) in options
        picked = streams.sample("s", options, 2)
        assert len(picked) == 2
        assert len(set(picked)) == 2

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RandomStreams(1).choice("c", [])

    def test_permutation_is_permutation(self):
        streams = RandomStreams(4)
        perm = streams.permutation("p", 50)
        assert sorted(perm) == list(range(50))

    def test_poisson_process_strictly_increasing(self):
        streams = RandomStreams(9)
        process = streams.poisson_process("pp", 1000.0)
        times = [next(process) for _ in range(100)]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
