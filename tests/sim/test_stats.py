"""Tests for statistics primitives."""

import numpy as np
import pytest

from repro.sim.stats import Counter, RateEstimator, SummaryStats, TimeSeries


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)


class TestTimeSeries:
    def test_record_and_len(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert len(series) == 2
        assert series.last() == 2.0

    def test_mean(self):
        series = TimeSeries("s")
        for value in (1.0, 2.0, 3.0):
            series.record(0.0, value)
        assert series.mean() == pytest.approx(2.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("s").mean()

    def test_empty_last_is_none(self):
        assert TimeSeries("s").last() is None


class TestSummaryStats:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10, 3, size=500)
        stats = SummaryStats()
        stats.extend(samples)
        assert stats.count == 500
        assert stats.mean == pytest.approx(float(np.mean(samples)))
        assert stats.variance == pytest.approx(float(np.var(samples, ddof=1)))
        assert stats.stddev == pytest.approx(float(np.std(samples, ddof=1)))
        assert stats.minimum == pytest.approx(float(np.min(samples)))
        assert stats.maximum == pytest.approx(float(np.max(samples)))

    def test_variance_of_single_sample_is_zero(self):
        stats = SummaryStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    def test_empty_stats(self):
        stats = SummaryStats()
        assert stats.count == 0
        assert stats.variance == 0.0

    def test_empty_stats_full_surface(self):
        stats = SummaryStats()
        assert stats.mean == 0.0
        assert stats.stddev == 0.0
        assert stats.minimum == float("inf")
        assert stats.maximum == float("-inf")


class TestRateEstimator:
    def test_rate_over_window(self):
        estimator = RateEstimator(window=1e-3)
        # 125 bytes per 0.1 ms over 1 ms -> 1250 bytes/ms -> 10 Mbps.
        for index in range(10):
            estimator.record(index * 1e-4, 125)
        assert estimator.rate_bps(1e-3) == pytest.approx(10e6)

    def test_old_events_age_out(self):
        estimator = RateEstimator(window=1e-3)
        estimator.record(0.0, 10_000)
        assert estimator.rate_bps(10.0) == 0.0

    def test_total_bytes(self):
        estimator = RateEstimator()
        estimator.record(0.0, 100)
        estimator.record(0.1, 200)
        assert estimator.total_bytes == 300

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            RateEstimator(window=0)

    def test_rate_at_time_zero(self):
        """At t=0 the full-window divisor dilutes the estimate but never divides
        by zero; the telemetry layer's WindowedRate corrects the dilution."""
        estimator = RateEstimator(window=1e-3)
        estimator.record(0.0, 125)
        assert estimator.rate_bps(0.0) == pytest.approx(125 * 8 / 1e-3)

    def test_empty_estimator_rate_is_zero(self):
        assert RateEstimator().rate_bps(0.0) == 0.0
        assert RateEstimator().total_bytes == 0
