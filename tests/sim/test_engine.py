"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]

    def test_kwargs_passed_to_callback(self):
        sim = Simulator()
        seen = {}
        sim.schedule(0.1, seen.update, value=42)
        sim.run()
        assert seen == {"value": 42}

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_none_is_noop(self):
        Simulator().cancel(None)

    def test_cancelled_events_not_counted_as_processed(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(event)
        assert sim.run() == 1


class TestRunControl:
    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_with_no_events_advances_clock(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_stop_from_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_max_events(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=4) == 4

    def test_run_returns_number_processed(self):
        sim = Simulator()
        for index in range(5):
            sim.schedule(index, lambda: None)
        assert sim.run() == 5
        assert sim.events_processed == 5

    def test_run_not_reentrant(self):
        sim = Simulator()
        errors = []

        def try_reenter():
            try:
                sim.run()
            except SimulationError as error:
                errors.append(error)

        sim.schedule(1.0, try_reenter)
        sim.run()
        assert len(errors) == 1

    def test_peek_next_time(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        sim.schedule(2.5, lambda: None)
        assert sim.peek_next_time() == 2.5
