"""Tests for timers and periodic processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess, Timer


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_stop_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_restart_pushes_expiry_back(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, lambda: timer.restart(2.0))
        sim.run()
        assert fired == [3.0]

    def test_running_and_expiry_time(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.running
        assert timer.expiry_time is None
        timer.start(5.0)
        assert timer.running
        assert timer.expiry_time == 5.0

    def test_not_running_after_fire(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        sim.run()
        assert not timer.running


class TestPeriodicProcess:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 1.0, ticks.append)
        process.start()
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_initial_delay(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 1.0, ticks.append)
        process.start(initial_delay=0.25)
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 1.0, ticks.append)
        process.start()
        sim.schedule(2.5, process.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not process.running

    def test_double_start_is_noop(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 1.0, ticks.append)
        process.start()
        process.start()
        sim.run(until=1.5)
        assert ticks == [1.0]

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicProcess(Simulator(), 0.0, lambda now: None)
