"""Tests for the structured trace log."""

from repro.sim.trace import TraceEvent, TraceLog


class TestTraceLog:
    def test_disabled_by_default(self):
        trace = TraceLog()
        trace.record(0.0, "anything", key="value")
        assert len(trace) == 0

    def test_enabled_records(self):
        trace = TraceLog(enabled=True)
        trace.record(1.0, "switch.trim", switch="edge0_0")
        assert len(trace) == 1
        assert trace.events[0].category == "switch.trim"
        assert trace.events[0].details["switch"] == "edge0_0"

    def test_category_filtering_on_record(self):
        trace = TraceLog(enabled=True, categories={"a"})
        trace.record(0.0, "a")
        trace.record(0.0, "b")
        assert trace.count("a") == 1
        assert trace.count("b") == 0

    def test_filter_and_count(self):
        trace = TraceLog(enabled=True)
        for _ in range(3):
            trace.record(0.0, "x")
        trace.record(0.0, "y")
        assert trace.count("x") == 3
        assert len(trace.filter("y")) == 1

    def test_clear(self):
        trace = TraceLog(enabled=True)
        trace.record(0.0, "x")
        trace.clear()
        assert len(trace) == 0

    def test_event_str_contains_details(self):
        event = TraceEvent(time=1.5, category="drop", details={"port": "p1"})
        rendered = str(event)
        assert "drop" in rendered
        assert "port=p1" in rendered


class TestTraceRingBuffer:
    def test_unbounded_by_default(self):
        trace = TraceLog(enabled=True)
        for index in range(1000):
            trace.record(0.0, "x", index=index)
        assert len(trace) == 1000
        assert trace.dropped == 0

    def test_ring_keeps_newest_and_counts_dropped(self):
        trace = TraceLog(enabled=True, max_events=3)
        for index in range(7):
            trace.record(float(index), "x", index=index)
        assert len(trace) == 3
        assert trace.dropped == 4
        assert [event.details["index"] for event in trace.events] == [4, 5, 6]

    def test_filtered_out_events_do_not_drop(self):
        trace = TraceLog(enabled=True, categories={"keep"}, max_events=1)
        trace.record(0.0, "keep")
        for _ in range(5):
            trace.record(0.0, "ignore")
        assert trace.dropped == 0
        assert trace.count("keep") == 1

    def test_clear_resets_dropped(self):
        trace = TraceLog(enabled=True, max_events=1)
        trace.record(0.0, "x")
        trace.record(0.0, "x")
        assert trace.dropped == 1
        trace.clear()
        assert trace.dropped == 0
        assert len(trace) == 0

    def test_rejects_bad_bound(self):
        import pytest

        with pytest.raises(ValueError):
            TraceLog(max_events=0)


class TestTraceRegistryBinding:
    def test_counts_survive_eviction(self):
        from repro.obs.registry import MetricRegistry

        registry = MetricRegistry()
        trace = TraceLog(enabled=True, max_events=2)
        trace.bind_registry(registry)
        for _ in range(5):
            trace.record(0.0, "switch.trim")
        trace.record(0.0, "session.done")
        assert len(trace) == 2  # ring kept only the newest two
        assert registry.counter("trace.switch.trim").value == 5
        assert registry.counter("trace.session.done").value == 1

    def test_disabled_trace_counts_nothing(self):
        from repro.obs.registry import MetricRegistry

        registry = MetricRegistry()
        trace = TraceLog()
        trace.bind_registry(registry)
        trace.record(0.0, "x")
        assert len(registry) == 0
