"""Tests for the structured trace log."""

from repro.sim.trace import TraceEvent, TraceLog


class TestTraceLog:
    def test_disabled_by_default(self):
        trace = TraceLog()
        trace.record(0.0, "anything", key="value")
        assert len(trace) == 0

    def test_enabled_records(self):
        trace = TraceLog(enabled=True)
        trace.record(1.0, "switch.trim", switch="edge0_0")
        assert len(trace) == 1
        assert trace.events[0].category == "switch.trim"
        assert trace.events[0].details["switch"] == "edge0_0"

    def test_category_filtering_on_record(self):
        trace = TraceLog(enabled=True, categories={"a"})
        trace.record(0.0, "a")
        trace.record(0.0, "b")
        assert trace.count("a") == 1
        assert trace.count("b") == 0

    def test_filter_and_count(self):
        trace = TraceLog(enabled=True)
        for _ in range(3):
            trace.record(0.0, "x")
        trace.record(0.0, "y")
        assert trace.count("x") == 3
        assert len(trace.filter("y")) == 1

    def test_clear(self):
        trace = TraceLog(enabled=True)
        trace.record(0.0, "x")
        trace.clear()
        assert len(trace) == 0

    def test_event_str_contains_details(self):
        event = TraceEvent(time=1.5, category="drop", details={"port": "p1"})
        rendered = str(event)
        assert "drop" in rendered
        assert "port=p1" in rendered
