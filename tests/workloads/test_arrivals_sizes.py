"""Tests for arrival processes and flow-size distributions."""

import random

import pytest

from repro.workloads.arrivals import PoissonArrivals, UniformArrivals, synchronised_arrivals
from repro.workloads.flowsize import FixedSize, ParetoSize, UniformSize


class TestPoissonArrivals:
    def test_times_increasing(self):
        times = PoissonArrivals(1000.0).times(200, random.Random(1))
        assert all(later > earlier for earlier, later in zip(times, times[1:]))

    def test_mean_interarrival_matches_rate(self):
        rate = 2560.0
        times = PoissonArrivals(rate).times(5000, random.Random(2))
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1 / rate, rel=0.1)

    def test_start_offset(self):
        times = PoissonArrivals(10.0).times(5, random.Random(3), start=100.0)
        assert all(t > 100.0 for t in times)

    def test_count_zero(self):
        assert PoissonArrivals(10.0).times(0, random.Random(1)) == []

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).times(-1, random.Random(1))


class TestUniformAndSynchronised:
    def test_uniform_spacing(self):
        times = UniformArrivals(0.5).times(4, random.Random(1))
        assert times == [0.5, 1.0, 1.5, 2.0]

    def test_uniform_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            UniformArrivals(0)

    def test_synchronised(self):
        assert synchronised_arrivals(3, start=2.0) == [2.0, 2.0, 2.0]

    def test_synchronised_rejects_negative(self):
        with pytest.raises(ValueError):
            synchronised_arrivals(-1)


class TestFlowSizes:
    def test_fixed(self):
        assert FixedSize(4_000_000).sample(random.Random(1)) == 4_000_000

    def test_fixed_rejects_bad(self):
        with pytest.raises(ValueError):
            FixedSize(0)

    def test_uniform_in_bounds(self):
        dist = UniformSize(100, 200)
        rng = random.Random(4)
        for _ in range(100):
            assert 100 <= dist.sample(rng) <= 200

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformSize(200, 100)

    def test_pareto_in_bounds_and_skewed(self):
        dist = ParetoSize(10_000, 10_000_000, shape=1.2)
        rng = random.Random(5)
        samples = [dist.sample(rng) for _ in range(2000)]
        assert all(10_000 <= value <= 10_000_000 for value in samples)
        # Heavy tail: the mean greatly exceeds the median.
        samples.sort()
        median = samples[len(samples) // 2]
        mean = sum(samples) / len(samples)
        assert mean > 1.5 * median

    def test_pareto_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ParetoSize(10, 100, shape=0)
