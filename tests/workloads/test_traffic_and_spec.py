"""Tests for traffic matrices and transfer specifications."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.spec import TransferKind, TransferSpec
from repro.workloads.traffic_matrix import permutation_pairs, repeated_permutation_pairs


class TestPermutationPairs:
    def test_is_a_derangement(self):
        hosts = [f"h{i}" for i in range(20)]
        pairs = permutation_pairs(hosts, random.Random(1))
        sources = [src for src, _ in pairs]
        destinations = [dst for _, dst in pairs]
        assert sources == hosts
        assert sorted(destinations) == sorted(hosts)
        assert all(src != dst for src, dst in pairs)

    @settings(max_examples=20, deadline=None)
    @given(count=st.integers(min_value=2, max_value=50), seed=st.integers(0, 1000))
    def test_derangement_property(self, count, seed):
        hosts = [f"h{i}" for i in range(count)]
        pairs = permutation_pairs(hosts, random.Random(seed))
        assert all(src != dst for src, dst in pairs)
        assert sorted(dst for _, dst in pairs) == sorted(hosts)

    def test_rejects_tiny_host_sets(self):
        with pytest.raises(ValueError):
            permutation_pairs(["only"], random.Random(1))

    def test_repeated_pairs_cover_requested_count(self):
        hosts = [f"h{i}" for i in range(8)]
        pairs = repeated_permutation_pairs(hosts, 20, random.Random(2))
        assert len(pairs) == 20
        # Each full round is itself a permutation.
        first_round = pairs[:8]
        assert sorted(dst for _, dst in first_round) == sorted(hosts)

    def test_repeated_pairs_negative_count(self):
        with pytest.raises(ValueError):
            repeated_permutation_pairs(["a", "b"], -1, random.Random(1))


class TestTransferSpec:
    def test_valid_spec(self):
        spec = TransferSpec(
            transfer_id=1, kind=TransferKind.REPLICATE, client="h0",
            peers=("h1", "h2"), size_bytes=1000, start_time=0.5,
        )
        assert spec.num_peers == 2
        assert not spec.is_background

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            TransferSpec(1, TransferKind.UNICAST, "h0", ("h1",), 0, 0.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            TransferSpec(1, TransferKind.UNICAST, "h0", ("h1",), 10, -1.0)

    def test_rejects_no_peers(self):
        with pytest.raises(ValueError):
            TransferSpec(1, TransferKind.UNICAST, "h0", (), 10, 0.0)

    def test_rejects_self_peer(self):
        with pytest.raises(ValueError):
            TransferSpec(1, TransferKind.UNICAST, "h0", ("h0",), 10, 0.0)

    def test_unicast_requires_single_peer(self):
        with pytest.raises(ValueError):
            TransferSpec(1, TransferKind.UNICAST, "h0", ("h1", "h2"), 10, 0.0)
