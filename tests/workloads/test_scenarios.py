"""Tests for storage, Incast and background workload generators."""

import random

import pytest

from repro.network.topology import FatTreeTopology
from repro.workloads.background import background_transfers
from repro.workloads.incast import incast_transfers
from repro.workloads.spec import TransferKind
from repro.workloads.storage import StorageWorkload, replica_placement, storage_transfer_summary


@pytest.fixture(scope="module")
def topology():
    return FatTreeTopology(4)


class TestReplicaPlacement:
    def test_replicas_outside_client_rack(self, topology):
        rng = random.Random(1)
        for _ in range(50):
            replicas = replica_placement(topology, "h0", 3, rng)
            rackmates = set(topology.hosts_in_same_rack("h0"))
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert not rackmates.intersection(replicas)

    def test_too_many_replicas_rejected(self, topology):
        with pytest.raises(ValueError):
            replica_placement(topology, "h0", 15, random.Random(1))

    def test_zero_replicas_rejected(self, topology):
        with pytest.raises(ValueError):
            replica_placement(topology, "h0", 0, random.Random(1))


class TestStorageWorkload:
    def test_generates_requested_count_with_poisson_arrivals(self, topology):
        workload = StorageWorkload(
            kind=TransferKind.REPLICATE, num_replicas=3,
            object_bytes=4_000_000, arrival_rate_per_second=2560,
        )
        transfers = workload.generate(topology, 100, random.Random(2))
        assert len(transfers) == 100
        times = [spec.start_time for spec in transfers]
        assert times == sorted(times)
        assert all(spec.kind is TransferKind.REPLICATE for spec in transfers)
        assert all(spec.num_peers == 3 for spec in transfers)
        assert all(spec.size_bytes == 4_000_000 for spec in transfers)

    def test_clients_follow_permutation_rounds(self, topology):
        workload = StorageWorkload(
            kind=TransferKind.FETCH, num_replicas=1,
            object_bytes=1_000, arrival_rate_per_second=100,
        )
        transfers = workload.generate(topology, 16, random.Random(3))
        clients = [spec.client for spec in transfers]
        # 16 transfers over a 16-host topology: every host is a client once.
        assert sorted(clients) == sorted(topology.hosts)

    def test_transfer_ids_sequential_from_offset(self, topology):
        workload = StorageWorkload(
            kind=TransferKind.REPLICATE, num_replicas=1,
            object_bytes=1_000, arrival_rate_per_second=100,
        )
        transfers = workload.generate(topology, 5, random.Random(4), first_transfer_id=50)
        assert [spec.transfer_id for spec in transfers] == [50, 51, 52, 53, 54]

    def test_rejects_unicast_kind(self):
        with pytest.raises(ValueError):
            StorageWorkload(kind=TransferKind.UNICAST, num_replicas=1,
                            object_bytes=1, arrival_rate_per_second=1)

    def test_summary(self, topology):
        workload = StorageWorkload(
            kind=TransferKind.REPLICATE, num_replicas=1,
            object_bytes=1_000, arrival_rate_per_second=100,
        )
        transfers = workload.generate(topology, 10, random.Random(5))
        summary = storage_transfer_summary(transfers)
        assert summary["count"] == 10
        assert summary["total_bytes"] == 10_000
        assert storage_transfer_summary([])["count"] == 0


class TestIncastWorkload:
    def test_scenario_and_transfers_consistent(self, topology):
        scenario, transfers = incast_transfers(
            topology, num_senders=8, response_bytes=70_000, rng=random.Random(1)
        )
        assert scenario.num_senders == 8
        assert scenario.total_bytes == 8 * 70_000
        assert len(transfers) == 8
        assert all(spec.peers == (scenario.aggregator,) for spec in transfers)
        assert all(spec.start_time == 0.0 for spec in transfers)
        assert scenario.aggregator not in scenario.senders

    def test_explicit_aggregator(self, topology):
        scenario, _ = incast_transfers(
            topology, 4, 1000, random.Random(1), aggregator="h3"
        )
        assert scenario.aggregator == "h3"

    def test_too_many_senders_rejected(self, topology):
        with pytest.raises(ValueError):
            incast_transfers(topology, 99, 1000, random.Random(1))

    def test_bad_parameters_rejected(self, topology):
        with pytest.raises(ValueError):
            incast_transfers(topology, 0, 1000, random.Random(1))
        with pytest.raises(ValueError):
            incast_transfers(topology, 2, 0, random.Random(1))


class TestBackgroundTraffic:
    def test_generates_unicast_background_specs(self, topology):
        transfers = background_transfers(
            topology, 10, 64_000, 100.0, random.Random(1), first_transfer_id=1000
        )
        assert len(transfers) == 10
        assert all(spec.kind is TransferKind.UNICAST for spec in transfers)
        assert all(spec.is_background for spec in transfers)
        assert all(spec.label == "background" for spec in transfers)
        assert [spec.transfer_id for spec in transfers] == list(range(1000, 1010))

    def test_zero_count(self, topology):
        assert background_transfers(topology, 0, 1000, 1.0, random.Random(1)) == []

    def test_rejects_bad_size(self, topology):
        with pytest.raises(ValueError):
            background_transfers(topology, 1, 0, 1.0, random.Random(1))
