"""Setuptools shim for environments without PEP 660 editable-install support.

All package metadata lives in pyproject.toml.  Normal environments should
``pip install -e .``; offline containers without the ``wheel`` package can
fall back to ``python setup.py develop`` (or set ``PYTHONPATH=src``).
"""

from setuptools import setup

setup()
