"""Benchmark for the heavy-tailed workload-mix extension experiment."""

from __future__ import annotations

from benchmarks.conftest import publish
from repro.experiments.config import Protocol
from repro.experiments.workload_mix import format_workload_mix, run_workload_mix


def test_workload_mix_extension(benchmark, config):
    results = benchmark.pedantic(
        lambda: run_workload_mix(config, num_transfers=30), rounds=1, iterations=1
    )
    publish("extension_workload_mix", format_workload_mix(results))

    rq = results[Protocol.POLYRAPTOR]
    tcp = results[Protocol.TCP]
    assert rq.completion_fraction == 1.0
    # Short flows stay fast and elephants keep making progress under Polyraptor.
    assert rq.short_median_fct_ms < 5.0
    assert rq.long_median_goodput_gbps > 0.3
    # Polyraptor's short-flow latency is competitive with TCP's.
    assert rq.short_median_fct_ms <= 2.0 * tcp.short_median_fct_ms
