"""Micro-benchmarks of the RaptorQ-style codec itself.

These quantify the "RQ encoding/decoding complexity and latency" the paper's
discussion section flags as an open question: encoder setup (intermediate
symbol computation), per-symbol repair generation, and full-block decoding
with and without losses.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.rq.decoder import BlockDecoder
from repro.rq.encoder import BlockEncoder
from repro.rq.params import for_k

SYMBOL_SIZE = 1408


def _source_block(k: int, seed: int = 1) -> list[bytes]:
    rng = random.Random(seed)
    return [bytes(rng.getrandbits(8) for _ in range(SYMBOL_SIZE)) for _ in range(k)]


@pytest.mark.parametrize("k", [32, 128])
def test_encoder_setup(benchmark, k):
    """Cost of computing the intermediate symbols for a K-symbol block."""
    for_k(k)  # exclude the cached parameter/seed search from the measurement
    source = _source_block(k)
    encoder = benchmark(lambda: BlockEncoder(source))
    assert encoder.num_source_symbols == k


@pytest.mark.parametrize("k", [32, 128])
def test_repair_symbol_generation(benchmark, k):
    """Cost of generating one repair symbol (the sender's steady-state work)."""
    encoder = BlockEncoder(_source_block(k))
    counter = iter(range(k, 10_000_000))
    symbol = benchmark(lambda: encoder.symbol(next(counter)))
    assert len(symbol) == SYMBOL_SIZE


@pytest.mark.parametrize("k", [32, 128])
def test_decode_without_loss(benchmark, k):
    """Decoding when every source symbol arrived: the systematic fast path."""
    encoder = BlockEncoder(_source_block(k))
    symbols = [(esi, encoder.symbol(esi)) for esi in range(k)]

    def decode():
        decoder = BlockDecoder(k, SYMBOL_SIZE)
        for esi, data in symbols:
            decoder.add_symbol(esi, data)
        return decoder.decode()

    result = benchmark(decode)
    assert result.success and not result.used_gaussian_elimination


@pytest.mark.parametrize("k", [32, 128])
def test_decode_with_30_percent_loss(benchmark, k):
    """Decoding with Gaussian elimination after losing 30% of the source symbols."""
    encoder = BlockEncoder(_source_block(k))
    rng = random.Random(2)
    kept = [esi for esi in range(k) if rng.random() > 0.3]
    repair = list(range(k, k + (k - len(kept)) + 2))
    symbols = [(esi, encoder.symbol(esi)) for esi in kept + repair]

    def decode():
        decoder = BlockDecoder(k, SYMBOL_SIZE)
        for esi, data in symbols:
            decoder.add_symbol(esi, data)
        return decoder.decode()

    result = benchmark(decode)
    assert result.success and result.used_gaussian_elimination
