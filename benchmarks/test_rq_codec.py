"""Micro-benchmarks of the RaptorQ-style codec itself.

These quantify the "RQ encoding/decoding complexity and latency" the paper's
discussion section flags as an open question: encoder setup (intermediate
symbol computation), per-symbol repair generation, and full-block decoding
with and without losses.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.rq.backend import CodecContext
from repro.rq.decoder import BlockDecoder
from repro.rq.encoder import BlockEncoder
from repro.rq.params import for_k

SYMBOL_SIZE = 1408

RESULTS_DIR = Path(__file__).parent / "results"


def _source_block(k: int, seed: int = 1) -> list[bytes]:
    rng = random.Random(seed)
    return [bytes(rng.getrandbits(8) for _ in range(SYMBOL_SIZE)) for _ in range(k)]


@pytest.mark.parametrize("k", [32, 128])
def test_encoder_setup(benchmark, k):
    """Cost of computing the intermediate symbols for a K-symbol block."""
    for_k(k)  # exclude the cached parameter/seed search from the measurement
    source = _source_block(k)
    encoder = benchmark(lambda: BlockEncoder(source))
    assert encoder.num_source_symbols == k


@pytest.mark.parametrize("k", [32, 128])
def test_repair_symbol_generation(benchmark, k):
    """Cost of generating one repair symbol (the sender's steady-state work)."""
    encoder = BlockEncoder(_source_block(k))
    counter = iter(range(k, 10_000_000))
    symbol = benchmark(lambda: encoder.symbol(next(counter)))
    assert len(symbol) == SYMBOL_SIZE


@pytest.mark.parametrize("k", [32, 128])
def test_decode_without_loss(benchmark, k):
    """Decoding when every source symbol arrived: the systematic fast path."""
    encoder = BlockEncoder(_source_block(k))
    symbols = [(esi, encoder.symbol(esi)) for esi in range(k)]

    def decode():
        decoder = BlockDecoder(k, SYMBOL_SIZE)
        for esi, data in symbols:
            decoder.add_symbol(esi, data)
        return decoder.decode()

    result = benchmark(decode)
    assert result.success and not result.used_gaussian_elimination


@pytest.mark.parametrize("k", [32, 128])
def test_decode_with_30_percent_loss(benchmark, k):
    """Decoding with Gaussian elimination after losing 30% of the source symbols."""
    encoder = BlockEncoder(_source_block(k))
    rng = random.Random(2)
    kept = [esi for esi in range(k) if rng.random() > 0.3]
    repair = list(range(k, k + (k - len(kept)) + 2))
    symbols = [(esi, encoder.symbol(esi)) for esi in kept + repair]

    def decode():
        decoder = BlockDecoder(k, SYMBOL_SIZE)
        for esi, data in symbols:
            decoder.add_symbol(esi, data)
        return decoder.decode()

    result = benchmark(decode)
    assert result.success and result.used_gaussian_elimination


def _time_per_block(action, blocks) -> float:
    """Average seconds to process one block across ``blocks`` inputs."""
    start = time.perf_counter()
    for block in blocks:
        action(block)
    return (time.perf_counter() - start) / len(blocks)


def _update_trajectory(point: dict) -> None:
    """Merge one K' measurement into the BENCH_rq_codec.json trajectory file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_rq_codec.json"
    trajectory = {"symbol_size": SYMBOL_SIZE, "unit": "seconds_per_block_warm", "series": []}
    if path.exists():
        try:
            trajectory = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            pass
    series = [entry for entry in trajectory.get("series", []) if entry.get("k") != point["k"]]
    series.append(point)
    trajectory["series"] = sorted(series, key=lambda entry: entry["k"])
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")


@pytest.mark.parametrize("k", [32, 64, 128])
def test_repeated_block_backend_throughput(benchmark, k):
    """The headline number of this codec architecture: warm-block speedup.

    The first block of a K' pays for Gaussian elimination under either
    backend; every later block with the same parameters replays the cached
    elimination plan under the ``planned`` backend.  This benchmark measures
    second-and-later blocks only (the steady state of any real transfer mix)
    and writes a ``BENCH_rq_codec.json`` trajectory so future PRs can track
    codec throughput over time.
    """
    blocks = [_source_block(k, seed) for seed in range(5)]
    loss_rng = random.Random(2)
    kept = [esi for esi in range(k) if loss_rng.random() > 0.3]
    repair = list(range(k, k + (k - len(kept)) + 2))
    esis = kept + repair

    contexts = {name: CodecContext(name) for name in ("reference", "planned")}
    encode_times: dict[str, float] = {}
    decode_times: dict[str, float] = {}
    for name, context in contexts.items():
        # Warm the parameter cache and (for `planned`) the plan cache.
        warm_encoder = BlockEncoder(blocks[0], context=context)
        symbols = [(esi, warm_encoder.symbol(esi)) for esi in esis]

        def decode(_block, _symbols=symbols, _context=context):
            decoder = BlockDecoder(k, SYMBOL_SIZE, context=_context)
            for esi, data in _symbols:
                decoder.add_symbol(esi, data)
            assert decoder.decode().success

        decode(blocks[0])  # warm the decode-side plan as well
        encode_times[name] = _time_per_block(
            lambda block, _context=context: BlockEncoder(block, context=_context), blocks
        )
        decode_times[name] = _time_per_block(decode, blocks)

    # Register the headline path (warm-block encode on the planned backend)
    # with pytest-benchmark so `--benchmark-only` runs select this test.
    benchmark.pedantic(
        lambda: BlockEncoder(blocks[0], context=contexts["planned"]), rounds=3, iterations=1
    )

    encode_speedup = encode_times["reference"] / encode_times["planned"]
    decode_speedup = decode_times["reference"] / decode_times["planned"]
    _update_trajectory(
        {
            "k": k,
            "encode_s_per_block": encode_times,
            "decode_s_per_block": decode_times,
            "encode_speedup": encode_speedup,
            "decode_speedup": decode_speedup,
            "planned_cache": contexts["planned"].stats_dict()["plan_cache"],
        }
    )
    print(
        f"\nK'={k}: encode {encode_speedup:.1f}x, decode {decode_speedup:.1f}x "
        "(planned vs reference, warm blocks)"
    )
    assert encode_speedup >= 3.0, (
        f"K'={k}: warm-block encode speedup {encode_speedup:.1f}x below the 3x floor"
    )
    assert decode_speedup >= 3.0, (
        f"K'={k}: warm-block decode speedup {decode_speedup:.1f}x below the 3x floor"
    )
