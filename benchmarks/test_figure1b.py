"""Figure 1b benchmark: multi-source fetch goodput vs session rank.

Paper series: 1 Senders RQ, 3 Senders RQ, 1 Senders TCP, 3 Senders TCP.
Expected shape (scaled): Polyraptor beats TCP; fetching from 3 replicas does
not hurt Polyraptor (it load-balances across them without coordination).
"""

from __future__ import annotations

from benchmarks.conftest import publish
from repro.experiments.config import Protocol
from repro.experiments.figure1b import run_figure1b
from repro.experiments.report import format_rank_figure


def test_figure1b_multi_source_fetch(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_figure1b(config, sender_counts=(1, 3)), rounds=1, iterations=1
    )

    rq1 = result.summary(Protocol.POLYRAPTOR, 1).mean_gbps
    rq3 = result.summary(Protocol.POLYRAPTOR, 3).mean_gbps
    tcp1 = result.summary(Protocol.TCP, 1).mean_gbps
    tcp3 = result.summary(Protocol.TCP, 3).mean_gbps
    extra = [
        f"RQ  3-sender/1-sender goodput ratio: {rq3 / rq1:.2f}",
        f"TCP 3-sender/1-sender goodput ratio: {tcp3 / tcp1:.2f}",
    ]
    publish(
        "figure1b",
        format_rank_figure(result, "Figure 1b -- multi-source fetch (scaled down)")
        + "\n" + "\n".join(extra),
    )

    # Paper shape assertions.
    assert rq1 > tcp1
    assert rq3 > tcp3
    assert rq3 >= 0.85 * rq1, "multi-source fetch must not hurt Polyraptor"
    for label, run in result.runs.items():
        assert run.completion_fraction == 1.0, f"{label}: not all sessions completed"
