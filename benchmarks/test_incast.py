"""Benchmark for the incast congestion-reaction experiment.

Records the fan-in sweep with the reaction loop off vs on in
``BENCH_incast.json`` so the FCT-tail trajectories stay comparable across
commits.  The headline claim is asserted before the artifact is written:
under deep fan-in (>= 16 synchronised senders on a k=6 fabric) ECN marking
plus the DCTCP-style sender reaction reduces TCP's p99 FCT against the
marking-off baseline -- the marking-off tail stacks several 200 ms
retransmission timeouts on its worst flow, while marked senders back off
before the drop-tail queue overflows in post-first-window rounds.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from benchmarks.conftest import publish
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.incast import MARK_OFF, MARK_ON, run_incast
from repro.experiments.report import format_incast
from repro.utils.units import KILOBYTE

RESULTS_DIR = Path(__file__).parent / "results"

#: k=6 gives 54 hosts, so fan-ins past the k=4 ceiling (15) are reachable.
FANINS = (8, 16)
RESPONSE_BYTES = 256 * KILOBYTE
NUM_SEEDS = 2
JOBS = 2

SWEEP_CONFIG = ExperimentConfig(
    fattree_k=6,
    num_foreground_transfers=1,
    object_bytes=64 * KILOBYTE,
    background_fraction=0.0,
    max_sim_time_s=30.0,
)


def test_incast_sweep(benchmark):
    start = time.perf_counter()
    sequential = run_incast(
        SWEEP_CONFIG, fanins=FANINS, response_bytes=RESPONSE_BYTES,
        num_seeds=NUM_SEEDS, jobs=1,
    )
    sequential_s = time.perf_counter() - start
    sharded = benchmark.pedantic(
        lambda: run_incast(
            SWEEP_CONFIG, fanins=FANINS, response_bytes=RESPONSE_BYTES,
            num_seeds=NUM_SEEDS, jobs=JOBS,
        ),
        rounds=1, iterations=1,
    )

    # Sharding must be invisible in every reported number, including the new
    # congestion-reaction counters.
    assert sharded.points == sequential.points
    assert sharded.codec_stats == sequential.codec_stats

    # The reaction loop genuinely ran in the mark-on cells and stayed
    # completely inert in the mark-off cells.
    deep = FANINS[-1]
    for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
        for fanin in FANINS:
            assert sharded.point(protocol, f"fanin-{fanin}/{MARK_OFF}").transport_stats is None
        stats = sharded.point(protocol, f"fanin-{deep}/{MARK_ON}").transport_stats
        assert stats is not None and stats["ecn_marks"] > 0
    tcp_stats = sharded.point(Protocol.TCP, f"fanin-{deep}/{MARK_ON}").transport_stats
    assert tcp_stats["ecn_echoes"] > 0 and tcp_stats["ecn_reactions"] > 0

    # Headline claim, asserted BEFORE the artifact is written: under deep
    # fan-in, marking + reaction shortens TCP's FCT tail.  Everything
    # completes either way (no starvation); the tail quantile is the story.
    for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
        for label in sharded.labels:
            point = sharded.point(protocol, label)
            assert point.completion_fraction == 1.0
    tcp_off = sharded.point(Protocol.TCP, f"fanin-{deep}/{MARK_OFF}")
    tcp_on = sharded.point(Protocol.TCP, f"fanin-{deep}/{MARK_ON}")
    assert tcp_on.p99_fct_ms < tcp_off.p99_fct_ms
    assert tcp_on.median_fct_ms < tcp_off.median_fct_ms

    def finite_or_none(value):
        return value if value is not None and math.isfinite(value) else None

    record = {
        "parameters": {
            "fattree_k": SWEEP_CONFIG.fattree_k,
            "fanins": list(FANINS),
            "response_kb": RESPONSE_BYTES // KILOBYTE,
            "num_seeds": NUM_SEEDS,
            "jobs": JOBS,
        },
        "cpu_count": os.cpu_count() or 1,
        "sequential_s": sequential_s,
        "results_identical": True,
        "series": {
            f"{protocol.value}@{label}": {
                "completed": point.completed,
                "offered": point.offered,
                "median_fct_ms": finite_or_none(point.median_fct_ms),
                "p90_fct_ms": finite_or_none(point.p90_fct_ms),
                "p99_fct_ms": finite_or_none(point.p99_fct_ms),
                "mean_goodput_gbps": point.mean_goodput_gbps,
                "fct_vs_unmarked": finite_or_none(point.fct_vs_unmarked),
                "transport_stats": point.transport_stats,
            }
            for protocol in (Protocol.POLYRAPTOR, Protocol.TCP)
            for label, point in (
                (lbl, sharded.point(protocol, lbl)) for lbl in sharded.labels
            )
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_incast.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    publish("extension_incast", format_incast(sharded))
