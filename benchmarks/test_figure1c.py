"""Figure 1c benchmark: Incast -- goodput vs number of synchronised senders.

Paper series: RQ 256KB, RQ 70KB, TCP 256KB, TCP 70KB (error bars = 95% CI over
repetitions).  Expected shape (scaled): TCP's goodput collapses as the sender
count grows; Polyraptor stays near the receiver's line rate for both response
sizes.
"""

from __future__ import annotations

from benchmarks.conftest import publish
from repro.experiments.config import Protocol
from repro.experiments.figure1c import run_figure1c
from repro.experiments.report import format_figure1c
from repro.utils.units import KILOBYTE

SENDER_COUNTS = (1, 2, 4, 8, 12)
RESPONSE_SIZES = (256 * KILOBYTE, 70 * KILOBYTE)


def test_figure1c_incast(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_figure1c(
            config,
            sender_counts=SENDER_COUNTS,
            response_sizes=RESPONSE_SIZES,
            num_seeds=3,
        ),
        rounds=1,
        iterations=1,
    )

    publish("figure1c", format_figure1c(result, "Figure 1c -- Incast (scaled down)"))

    for response_bytes in RESPONSE_SIZES:
        rq_points = {p.num_senders: p for p in result.points(Protocol.POLYRAPTOR, response_bytes)}
        tcp_points = {p.num_senders: p for p in result.points(Protocol.TCP, response_bytes)}
        # Polyraptor never collapses: the largest fan-in is still near line rate.
        assert rq_points[max(SENDER_COUNTS)].mean_goodput_gbps > 0.6
        # Polyraptor's goodput at high fan-in is no worse than at low fan-in.
        assert (rq_points[max(SENDER_COUNTS)].mean_goodput_gbps
                > 0.8 * rq_points[1].mean_goodput_gbps)
        # TCP collapses for large fan-in (the hallmark of Incast).
        assert (tcp_points[max(SENDER_COUNTS)].mean_goodput_gbps
                < 0.6 * tcp_points[1].mean_goodput_gbps)
        # And Polyraptor beats TCP by a wide margin at high fan-in.
        assert (rq_points[max(SENDER_COUNTS)].mean_goodput_gbps
                > 2 * tcp_points[max(SENDER_COUNTS)].mean_goodput_gbps)
