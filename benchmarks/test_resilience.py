"""Benchmark for the path-resilience experiment under injected faults.

The paper's core claim -- fountain coding over redundant paths is robust to
path loss -- is only testable on a fabric that actually breaks.  This
benchmark runs the resilience degradation sweep (healthy baseline plus two
fault intensities, both protocols), asserts the sharded run is identical to
the sequential one, and records the FCT degradation ratios and fault
counters in ``BENCH_resilience.json`` so trajectories stay comparable across
commits.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from benchmarks.conftest import publish
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.report import format_resilience
from repro.experiments.resilience import run_resilience
from repro.utils.units import KILOBYTE

RESULTS_DIR = Path(__file__).parent / "results"

INTENSITIES = (0.0, 0.5, 1.0)
JOBS = 2

SWEEP_CONFIG = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=16,
    object_bytes=96 * KILOBYTE,
    background_fraction=0.0,
    offered_load=0.15,
    max_sim_time_s=30.0,
)


def test_resilience_sweep(benchmark):
    start = time.perf_counter()
    sequential = run_resilience(SWEEP_CONFIG, intensities=INTENSITIES, jobs=1)
    sequential_s = time.perf_counter() - start
    sharded = benchmark.pedantic(
        lambda: run_resilience(SWEEP_CONFIG, intensities=INTENSITIES, jobs=JOBS),
        rounds=1, iterations=1,
    )

    # Sharding must be invisible in every reported number.
    assert sharded.points == sequential.points
    assert sharded.codec_stats == sequential.codec_stats

    # Faults genuinely struck: events applied, routes recomputed.
    for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
        for intensity in INTENSITIES[1:]:
            stats = sharded.point(protocol, intensity).fault_stats
            assert stats["events_applied"] > 0
            assert stats["reroutes"] > 0

    # The qualitative story, asserted BEFORE the artifact is written so a
    # failing run never leaves a plausible-looking json behind: Polyraptor
    # keeps completing everything it is offered even at the heaviest
    # intensity (spraying + fountain coding route around the damage) and its
    # FCT degradation stays bounded.
    worst = sharded.point(Protocol.POLYRAPTOR, INTENSITIES[-1])
    assert worst.completion_fraction == 1.0
    assert worst.fct_vs_healthy is not None and worst.fct_vs_healthy < 3.0

    def finite_or_none(value):
        return value if value is not None and math.isfinite(value) else None

    record = {
        "parameters": {
            "fattree_k": SWEEP_CONFIG.fattree_k,
            "sessions": SWEEP_CONFIG.num_foreground_transfers,
            "object_kb": SWEEP_CONFIG.object_bytes // KILOBYTE,
            "intensities": list(INTENSITIES),
            "jobs": JOBS,
        },
        "cpu_count": os.cpu_count() or 1,
        "sequential_s": sequential_s,
        "results_identical": True,
        "series": {
            f"{protocol.value}@{intensity}": {
                "completed": point.completed,
                "offered": point.offered,
                # Undefined medians (no completed transfers) serialise as
                # null -- float('inf') is not valid RFC 8259 JSON.
                "median_fct_ms": finite_or_none(point.median_fct_ms),
                "p90_fct_ms": finite_or_none(point.p90_fct_ms),
                "mean_goodput_gbps": point.mean_goodput_gbps,
                "fct_vs_healthy": finite_or_none(point.fct_vs_healthy),
                "fault_stats": point.fault_stats,
            }
            for (protocol, intensity), point in (
                ((p, i), sharded.point(p, i))
                for p in (Protocol.POLYRAPTOR, Protocol.TCP)
                for i in INTENSITIES
            )
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_resilience.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    publish("extension_resilience", format_resilience(sharded))
