"""Micro-benchmarks of the pluggable GF(256) kernel layer.

Measures warm repeated-block encode/decode per registered-and-available
kernel -- the steady state of any real transfer mix, where the elimination
plan is cached and the batched kernel matmul is the whole cost -- and a
decode plan-cache hit-rate comparison between canonical missing-source keys
and the legacy exact-ESI keys under >= 10% loss.  Results land in
``benchmarks/results/BENCH_gf_kernels.json`` so future PRs can track kernel
throughput over time.

The headline assertion: the best available kernel (``numba`` when
importable, else ``blocked``) beats the ``numpy`` ground-truth kernel on
warm repeated-block work.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.rq.backend import CodecContext
from repro.rq.decoder import BlockDecoder
from repro.rq.encoder import BlockEncoder
from repro.rq.kernels import available_kernels, best_kernel_name
from repro.rq.params import for_k

SYMBOL_SIZE = 1408
RESULTS_DIR = Path(__file__).parent / "results"

#: Warm-block speedup the best available kernel must reach over ``numpy`` on
#: combined encode+decode time at the largest K'.  The pure-numpy ``blocked``
#: kernel measures ~1.2x locally; ``numba`` is far above.  Kept modest so CI
#: hardware noise cannot flip a real improvement into a failure.
SPEEDUP_FLOOR = 1.05


def _source_blocks(k: int, count: int = 5) -> list[list[bytes]]:
    blocks = []
    for seed in range(count):
        rng = random.Random(seed)
        blocks.append(
            [bytes(rng.getrandbits(8) for _ in range(SYMBOL_SIZE)) for _ in range(k)]
        )
    return blocks


def _lossy_esis(k: int, seed: int = 2) -> list[int]:
    rng = random.Random(seed)
    kept = [esi for esi in range(k) if rng.random() > 0.3]
    return kept + list(range(k, k + (k - len(kept)) + 2))


def _time_per_block(action, blocks, repeats: int = 3) -> float:
    """Best-of-``repeats`` seconds per block.

    Taking the minimum over repeated timing windows is the standard defence
    against scheduler noise on shared CI runners: interference can only
    inflate a window, so the minimum is the closest estimate of true cost,
    and the speedup gate below stays stable without weakening the floor.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for block in blocks:
            action(block)
        best = min(best, (time.perf_counter() - start) / len(blocks))
    return best


def _measure_kernel(name: str, k: int, blocks, esis) -> tuple[float, float]:
    """Warm-block (encode_s, decode_s) for one kernel at one K'."""
    context = CodecContext("planned", kernel=name)
    warm_encoder = BlockEncoder(blocks[0], context=context)
    symbols = [(esi, warm_encoder.symbol(esi)) for esi in esis]

    def decode(_block):
        decoder = BlockDecoder(k, SYMBOL_SIZE, context=context)
        for esi, data in symbols:
            decoder.add_symbol(esi, data)
        assert decoder.decode().success

    decode(blocks[0])  # warm the decode-side plan as well
    encode_s = _time_per_block(
        lambda block: BlockEncoder(block, context=context), blocks
    )
    decode_s = _time_per_block(decode, blocks)
    return encode_s, decode_s


def _canonical_hit_rates(k: int = 16) -> dict:
    """Decode hit rates, canonical vs exact keys, over a >=10%-loss stream."""
    source = _source_blocks(k, count=1)[0]
    encoder = BlockEncoder(source, context=CodecContext("reference"))
    patterns = [(0, 1), (2, 9), (5, 11, 14), (3, 8)]
    sessions = []
    for surplus in (2, 3, 4):
        for missing in patterns:
            kept = [esi for esi in range(k) if esi not in missing]
            repairs = list(range(k, k + len(missing) + surplus))
            sessions.append([(esi, encoder.symbol(esi)) for esi in kept + repairs])
    rates = {}
    for label, canonical in (("canonical", True), ("exact_esi", False)):
        context = CodecContext("planned", canonical_decode_plans=canonical)
        for symbols in sessions:
            decoder = BlockDecoder(k, SYMBOL_SIZE, context=context)
            for esi, data in symbols:
                decoder.add_symbol(esi, data)
            assert decoder.decode().success
        rates[label] = {
            "hits": context.decode_stats.hits,
            "misses": context.decode_stats.misses,
            "hit_rate": context.decode_stats.hit_rate,
        }
    return rates


def test_kernel_throughput_and_canonical_hit_rate(benchmark):
    """Warm-block throughput per kernel + the canonical-keying hit-rate win."""
    kernels = available_kernels()
    best = best_kernel_name()
    series = []
    for k in (32, 128):
        for_k(k)  # exclude the cached parameter search from every measurement
        blocks = _source_blocks(k)
        esis = _lossy_esis(k)
        encode_times: dict[str, float] = {}
        decode_times: dict[str, float] = {}
        for name in kernels:
            encode_times[name], decode_times[name] = _measure_kernel(
                name, k, blocks, esis
            )
        point = {
            "k": k,
            "encode_s_per_block": encode_times,
            "decode_s_per_block": decode_times,
            "best_kernel": best,
            "best_speedup_vs_numpy": {
                "encode": encode_times["numpy"] / encode_times[best],
                "decode": decode_times["numpy"] / decode_times[best],
                "combined": (encode_times["numpy"] + decode_times["numpy"])
                / (encode_times[best] + decode_times[best]),
            },
        }
        series.append(point)
        print(
            f"\nK'={k}: best={best} "
            f"encode {point['best_speedup_vs_numpy']['encode']:.2f}x, "
            f"decode {point['best_speedup_vs_numpy']['decode']:.2f}x vs numpy"
        )

    hit_rates = _canonical_hit_rates()
    print(
        f"decode plan-cache hit rate: canonical "
        f"{hit_rates['canonical']['hit_rate']:.3f} vs exact-ESI "
        f"{hit_rates['exact_esi']['hit_rate']:.3f}"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_gf_kernels.json").write_text(
        json.dumps(
            {
                "symbol_size": SYMBOL_SIZE,
                "unit": "seconds_per_block_warm",
                "kernels_measured": kernels,
                "best_kernel": best,
                "series": series,
                "canonical_decode_hit_rates": hit_rates,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # Register the headline path (warm encode on the best kernel) with
    # pytest-benchmark so --benchmark-only runs select this test.
    best_context = CodecContext("planned", kernel=best)
    blocks = _source_blocks(128, count=1)
    BlockEncoder(blocks[0], context=best_context)  # warm
    benchmark.pedantic(
        lambda: BlockEncoder(blocks[0], context=best_context), rounds=3, iterations=1
    )

    assert hit_rates["canonical"]["hit_rate"] > hit_rates["exact_esi"]["hit_rate"], (
        "canonical decode keys must strictly raise the plan-cache hit rate"
    )
    big = series[-1]
    combined = big["best_speedup_vs_numpy"]["combined"]
    assert best == "numpy" or combined >= SPEEDUP_FLOOR, (
        f"best kernel {best!r} only reached {combined:.2f}x the numpy kernel "
        f"on warm K'=128 blocks (floor: {SPEEDUP_FLOOR}x)"
    )


@pytest.mark.parametrize("name", sorted(set(available_kernels()) - {"numpy"}))
def test_each_kernel_decodes_byte_identically(name):
    """Sanity companion to the timing: accelerated kernels change no bytes."""
    k = 32
    blocks = _source_blocks(k, count=1)
    esis = _lossy_esis(k)
    decoded = {}
    for kernel in ("numpy", name):
        context = CodecContext("planned", kernel=kernel)
        encoder = BlockEncoder(blocks[0], context=context)
        decoder = BlockDecoder(k, SYMBOL_SIZE, context=context)
        for esi in esis:
            decoder.add_symbol(esi, encoder.symbol(esi))
        decoded[kernel] = decoder.decode().source_symbols
    assert decoded[name] == decoded["numpy"]
