"""Benchmark for the flight-recorder telemetry layer.

Writes ``BENCH_telemetry.json`` with three guarantees the observability
layer makes, asserted before the artifact is recorded:

* **Off-mode zero delta** -- a run with ``telemetry=None`` (the default)
  produces a canonical fingerprint byte-identical to a repeat run and
  carries no ``telemetry`` key at all, so pre-telemetry baselines remain
  comparable forever.
* **Sharding-invariant recording** -- the telemetry collected by a jobs=4
  sweep is byte-identical to the sequential jobs=1 sweep.
* **Bounded overhead** -- with the default 10 ms cadence on a paper-scale
  (k=10, 250-host) fabric cell, turning telemetry on costs < 10% wall
  clock against the telemetry-off run (best-of-N to shed scheduler noise).

Scale the overhead cell with ``REPRO_TELEMETRY_SESSIONS`` (default 12).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.parallel import (
    RunJob,
    clear_telemetry,
    collected_telemetry,
    execute_jobs,
)
from repro.experiments.resilience import permutation_workload
from repro.experiments.runner import run_transfers
from repro.network.topology import FatTreeTopology
from repro.obs import TelemetryConfig
from repro.utils.units import KILOBYTE, MEGABYTE

RESULTS_DIR = Path(__file__).parent / "results"

NUM_SESSIONS = int(os.environ.get("REPRO_TELEMETRY_SESSIONS", "8"))
REPEATS = 2
OVERHEAD_BUDGET = 0.10
JOBS = 4

#: the paper's fabric (k=10, 250 hosts) and object size (4 MB) at a
#: benchmark-sized session count; the multi-millisecond busy period spans
#: several 10 ms sampler ticks, so the overhead measurement is real.
PAPER_CELL = ExperimentConfig(
    fattree_k=10,
    num_foreground_transfers=NUM_SESSIONS,
    object_bytes=4 * MEGABYTE,
    background_fraction=0.2,
    offered_load=0.33,
    max_sim_time_s=30.0,
    seed=1,
)

#: small k=4 cell for the determinism checks (they re-run several times).
SMALL_CELL = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=12,
    object_bytes=96 * KILOBYTE,
    background_fraction=0.2,
    max_sim_time_s=30.0,
    seed=1,
)


def _canonical(result) -> str:
    return json.dumps(result.canonical_dict(), sort_keys=True, default=str)


def _telemetry_bytes(jobs, num_workers: int) -> str:
    clear_telemetry()
    execute_jobs(jobs, num_workers=num_workers, label="telemetry-bench")
    return json.dumps(
        [record.canonical() for record in collected_telemetry()], sort_keys=True
    )


def test_telemetry_off_zero_delta_and_overhead(benchmark):
    # -- off-mode zero delta (small cell, repeated runs) ---------------------
    topology4 = FatTreeTopology(SMALL_CELL.fattree_k)
    transfers4 = permutation_workload(SMALL_CELL, topology4)
    off_a = run_transfers(Protocol.POLYRAPTOR, SMALL_CELL, transfers4, topology=topology4)
    off_b = run_transfers(Protocol.POLYRAPTOR, SMALL_CELL, transfers4, topology=topology4)
    assert _canonical(off_a) == _canonical(off_b)
    assert off_a.telemetry is None
    assert "telemetry" not in off_a.canonical_dict()

    # Telemetry on must not perturb any transfer outcome; only the event
    # count may (deterministically) include the sampler's own ticks.
    on_cell = replace(SMALL_CELL, telemetry=TelemetryConfig())
    on_a = run_transfers(Protocol.POLYRAPTOR, on_cell, transfers4, topology=topology4)
    on_b = run_transfers(Protocol.POLYRAPTOR, on_cell, transfers4, topology=topology4)
    assert _canonical(on_a) == _canonical(on_b)
    off_dict, on_dict = off_a.canonical_dict(), on_a.canonical_dict()
    on_dict.pop("telemetry")
    off_dict.pop("events_processed")
    on_dict.pop("events_processed")
    zero_delta = json.dumps(off_dict, sort_keys=True, default=str) == json.dumps(
        on_dict, sort_keys=True, default=str
    )
    assert zero_delta

    # -- sharded sweeps record byte-identical telemetry ----------------------
    sweep_jobs = [
        RunJob(key=(seed, protocol.value), protocol=protocol,
               config=on_cell.with_seed(seed),
               transfers=tuple(transfers4))
        for seed in (1, 2) for protocol in (Protocol.POLYRAPTOR, Protocol.TCP)
    ]
    sequential_bytes = _telemetry_bytes(sweep_jobs, num_workers=1)
    sharded_bytes = _telemetry_bytes(sweep_jobs, num_workers=JOBS)
    assert sharded_bytes == sequential_bytes

    # -- overhead on the paper-scale cell ------------------------------------
    topology10 = FatTreeTopology(PAPER_CELL.fattree_k)
    transfers10 = permutation_workload(PAPER_CELL, topology10)
    on_paper = replace(PAPER_CELL, telemetry=TelemetryConfig())

    def best_wall(config) -> tuple[float, object]:
        best, result = float("inf"), None
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = run_transfers(
                Protocol.POLYRAPTOR, config, transfers10, topology=topology10
            )
            best = min(best, time.perf_counter() - start)
        return best, result

    off_wall, off_result = best_wall(PAPER_CELL)
    on_wall, on_result = benchmark.pedantic(
        lambda: best_wall(on_paper), rounds=1, iterations=1
    )
    assert on_result.completion_fraction == off_result.completion_fraction
    telemetry = on_result.telemetry
    assert telemetry["ticks"] >= 1
    assert telemetry["series"], "a loaded paper-scale cell must record series"

    overhead = on_wall / off_wall - 1.0
    assert overhead < OVERHEAD_BUDGET, (
        f"telemetry overhead {overhead:.1%} exceeds {OVERHEAD_BUDGET:.0%} "
        f"(off {off_wall:.2f}s, on {on_wall:.2f}s)"
    )

    record = {
        "parameters": {
            "fattree_k": PAPER_CELL.fattree_k,
            "num_sessions": NUM_SESSIONS,
            "object_kb": PAPER_CELL.object_bytes // KILOBYTE,
            "sample_period_ms": TelemetryConfig().sample_period_s * 1e3,
            "repeats": REPEATS,
            "jobs": JOBS,
        },
        "cpu_count": os.cpu_count() or 1,
        "off_mode_zero_delta": zero_delta,
        "sharded_telemetry_identical": sharded_bytes == sequential_bytes,
        "off_wall_s": off_wall,
        "on_wall_s": on_wall,
        "overhead_fraction": overhead,
        "sampler_ticks": telemetry["ticks"],
        "num_series": len(telemetry["series"]),
        "buffered_points": sum(
            len(series["t"]) for series in telemetry["series"].values()
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_telemetry.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        "Flight-recorder telemetry overhead (k=10 paper fabric)",
        f"sessions={NUM_SESSIONS}  cadence={TelemetryConfig().sample_period_s * 1e3:.0f} ms",
        f"off: {off_wall:.2f}s   on: {on_wall:.2f}s   overhead: {overhead:+.1%}",
        f"ticks={telemetry['ticks']}  series={len(telemetry['series'])}  "
        f"points={record['buffered_points']}",
        f"off-mode zero delta: {zero_delta}   jobs={JOBS} telemetry identical: "
        f"{record['sharded_telemetry_identical']}",
    ]
    from benchmarks.conftest import publish

    publish("extension_telemetry", "\n".join(lines))
