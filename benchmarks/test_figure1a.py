"""Figure 1a benchmark: replication (multicast) goodput vs session rank.

Paper series: 1 Replica RQ, 3 Replicas RQ, 1 Replica TCP, 3 Replicas TCP.
Expected shape (scaled): Polyraptor beats TCP for both replica counts, and
adding replicas costs Polyraptor (multicast) far less than TCP
(multi-unicast).
"""

from __future__ import annotations

from benchmarks.conftest import publish
from repro.experiments.config import Protocol
from repro.experiments.figure1a import run_figure1a
from repro.experiments.report import format_codec_stats, format_rank_figure


def test_figure1a_replication(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_figure1a(config, replica_counts=(1, 3)), rounds=1, iterations=1
    )

    text = format_rank_figure(result, "Figure 1a -- storage replication (scaled down)")
    ratio_lines = []
    rq1 = result.summary(Protocol.POLYRAPTOR, 1).mean_gbps
    rq3 = result.summary(Protocol.POLYRAPTOR, 3).mean_gbps
    tcp1 = result.summary(Protocol.TCP, 1).mean_gbps
    tcp3 = result.summary(Protocol.TCP, 3).mean_gbps
    ratio_lines.append(f"RQ  3-replica/1-replica goodput ratio: {rq3 / rq1:.2f}")
    ratio_lines.append(f"TCP 3-replica/1-replica goodput ratio: {tcp3 / tcp1:.2f}")
    codec_table = format_codec_stats(
        {label: run.codec_stats for label, run in result.runs.items()}
    )
    publish("figure1a", text + "\n" + "\n".join(ratio_lines) + "\n" + codec_table)

    # Paper shape assertions.
    assert rq1 > tcp1, "Polyraptor must outperform TCP with a single replica"
    assert rq3 > tcp3, "Polyraptor must outperform TCP with three replicas"
    assert rq3 / rq1 > tcp3 / tcp1, (
        "replication must hurt multicast Polyraptor less than multi-unicast TCP"
    )
    for label, run in result.runs.items():
        assert run.completion_fraction == 1.0, f"{label}: not all sessions completed"
