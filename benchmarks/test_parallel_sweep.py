"""Benchmark: sharded multi-seed figure1a sweep vs sequential execution.

The acceptance contract of the parallel executor is two-sided: a sweep run
with ``jobs=N`` must (a) produce results identical to sequential execution
-- per-series rank curves, summaries and merged plan-cache counters -- and
(b) actually pay for its spawn/IPC overhead.  This benchmark measures both
and records them, with the executor's per-phase profile, in
``BENCH_parallel_sweep.json``.

The determinism half is asserted unconditionally, for both the
shared-memory and the pickle transports.  The wall-clock half is honest
about the hardware: ``available_cpus()`` reads the scheduler affinity mask
(what a cgroup-limited CI runner can actually use, unlike
``os.cpu_count``), the persistent pool is warmed *outside* the timed
region (that cost is paid once per process, not per sweep, and is recorded
separately as ``pool_warm_s``), and the speedup floor is only enforced
when at least two cores are usable.  On a scarce-core runner the enforced
claim is the transport's instead: shared memory must move at least 10x
fewer bytes over the process pipe than pickle for the same sweep.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import publish
from repro.core.config import PolyraptorConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1a import run_figure1a
from repro.experiments.parallel import (
    available_cpus,
    set_transport,
    warm_worker_pool,
)
from repro.experiments.report import format_codec_stats, format_exec_profile
from repro.experiments.shm import shm_available
from repro.utils.units import KILOBYTE

RESULTS_DIR = Path(__file__).parent / "results"

NUM_SEEDS = 4
JOBS = 4

SWEEP_CONFIG = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=6,
    object_bytes=96 * KILOBYTE,
    background_fraction=0.0,
    offered_load=0.15,
    max_sim_time_s=30.0,
    polyraptor=PolyraptorConfig(carry_payload=True),
)


def _run(jobs: int):
    start = time.perf_counter()
    result = run_figure1a(SWEEP_CONFIG, replica_counts=(1,), num_seeds=NUM_SEEDS,
                          jobs=jobs)
    return result, time.perf_counter() - start


def _assert_identical(candidate, reference) -> None:
    assert candidate.series == reference.series
    assert candidate.summaries == reference.summaries
    assert candidate.codec_stats == reference.codec_stats


def test_sharded_sweep_is_identical_and_faster(benchmark):
    sequential, sequential_s = _run(jobs=1)
    sequential_profile = sequential.exec_profile

    transport = "shm" if shm_available() else "pickle"
    set_transport(transport)
    warm_start = time.perf_counter()
    warm_worker_pool(JOBS)
    pool_warm_s = time.perf_counter() - warm_start

    sharded, sharded_s = benchmark.pedantic(
        lambda: _run(jobs=JOBS), rounds=1, iterations=1
    )
    sharded_profile = sharded.exec_profile

    # Determinism: the sharded sweep must be indistinguishable from the
    # sequential one in every reported number, on both transports.
    _assert_identical(sharded, sequential)
    pickle_profile = None
    if transport == "shm":
        set_transport("pickle")
        try:
            pickled, _ = _run(jobs=JOBS)
        finally:
            set_transport(None)
        _assert_identical(pickled, sequential)
        pickle_profile = pickled.exec_profile
    else:
        set_transport(None)

    cpu_count = available_cpus()
    speedup = sequential_s / sharded_s if sharded_s > 0 else 0.0
    speedup_enforced = cpu_count >= 2
    record = {
        "parameters": {
            "num_seeds": NUM_SEEDS,
            "jobs": JOBS,
            "fattree_k": SWEEP_CONFIG.fattree_k,
            "sessions": SWEEP_CONFIG.num_foreground_transfers,
            "object_kb": SWEEP_CONFIG.object_bytes // KILOBYTE,
            "carry_payload": True,
            "transport": transport,
        },
        "cpu_count": cpu_count,
        "pool_warm_s": pool_warm_s,
        "sequential_s": sequential_s,
        "sharded_s": sharded_s,
        "speedup": speedup,
        "speedup_enforced": speedup_enforced,
        "results_identical": True,
        "profiles": {
            "sequential": sequential_profile,
            "sharded": sharded_profile,
            "pickle": pickle_profile,
        },
        "merged_plan_cache": sharded.codec_stats["1 Replica RQ"]["plan_cache"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel_sweep.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    pipe_note = ""
    if pickle_profile is not None and sharded_profile is not None:
        pipe_note = (
            f"pipe bytes: shm {sharded_profile['bytes_shipped']}B vs "
            f"pickle {pickle_profile['bytes_shipped']}B\n"
        )
    publish(
        "parallel_sweep",
        f"Sharded figure1a sweep ({NUM_SEEDS} seeds, jobs={JOBS}, "
        f"{cpu_count} usable cores, transport={transport})\n"
        f"sequential: {sequential_s:.2f}s   sharded: {sharded_s:.2f}s   "
        f"speedup: {speedup:.2f}x "
        f"({'enforced' if speedup_enforced else 'not enforced: single core'})   "
        f"pool warm (untimed): {pool_warm_s:.2f}s\n"
        + pipe_note
        + format_exec_profile(sharded_profile, title="Sharded executor profile")
        + "\n"
        + format_codec_stats(sharded.codec_stats),
    )

    # Pre-warmed encode plans mean encode never misses; any misses left are
    # decode-side (plans keyed by the exact lost-packet pattern, which cannot
    # be pre-computed), so they are bounded by the number of decoded blocks.
    stats = sharded.codec_stats["1 Replica RQ"]
    assert stats["plan_cache"]["misses"] <= stats["blocks_decoded"]
    assert stats["plan_cache"]["hits"] >= stats["blocks_encoded"]

    # The profile must expose the per-phase accounting the json promises.
    assert sharded_profile is not None
    for field in ("bytes_shipped", "serialize_s", "worker_init_s", "merge_s",
                  "wall_s", "run_s", "pool_spawn_s", "plans_ship_s"):
        assert field in sharded_profile
    assert sharded_profile["workers"] == JOBS

    if pickle_profile is not None:
        # Shared memory's pipe traffic is descriptor-sized: at least 10x
        # smaller than shipping the same payloads by pickle.  This holds on
        # any machine, so it is the enforced claim when cores are scarce.
        assert pickle_profile["bytes_shipped"] >= 10 * sharded_profile["bytes_shipped"], (
            f"expected >=10x pipe-byte reduction, got "
            f"{pickle_profile['bytes_shipped']}B (pickle) vs "
            f"{sharded_profile['bytes_shipped']}B (shm)"
        )

    if speedup_enforced:
        assert speedup > 1.0, (
            f"expected sharding to beat sequential on {cpu_count} cores, "
            f"got {speedup:.2f}x"
        )
    if cpu_count >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x wall-clock reduction on {cpu_count} cores, got {speedup:.2f}x"
        )
