"""Benchmark: sharded multi-seed figure1a sweep vs sequential execution.

The acceptance contract of the parallel executor is two-sided: a sweep run
with ``jobs=4`` must (a) produce results identical to sequential execution
-- per-series rank curves and merged plan-cache counters -- and (b) cut
wall-clock near-linearly with the available cores.  This benchmark measures
both and records them in ``BENCH_parallel_sweep.json``.

The determinism half is asserted unconditionally.  The speedup half depends
on the hardware: on a single-core runner the sharded run pays spawn/IPC
overhead for no gain, so the speedup floor is only enforced when the machine
actually has multiple cores (``cpu_count`` is recorded in the json either
way, so trajectories remain interpretable).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import publish
from repro.core.config import PolyraptorConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1a import run_figure1a
from repro.experiments.report import format_codec_stats
from repro.utils.units import KILOBYTE

RESULTS_DIR = Path(__file__).parent / "results"

NUM_SEEDS = 4
JOBS = 4

SWEEP_CONFIG = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=6,
    object_bytes=96 * KILOBYTE,
    background_fraction=0.0,
    offered_load=0.15,
    max_sim_time_s=30.0,
    polyraptor=PolyraptorConfig(carry_payload=True),
)


def _run(jobs: int):
    start = time.perf_counter()
    result = run_figure1a(SWEEP_CONFIG, replica_counts=(1,), num_seeds=NUM_SEEDS,
                          jobs=jobs)
    return result, time.perf_counter() - start


def test_sharded_sweep_is_identical_and_faster(benchmark):
    sequential, sequential_s = _run(jobs=1)
    sharded, sharded_s = benchmark.pedantic(
        lambda: _run(jobs=JOBS), rounds=1, iterations=1
    )

    # Determinism: the sharded sweep must be indistinguishable from the
    # sequential one in every reported number.
    assert sharded.series == sequential.series
    assert sharded.summaries == sequential.summaries
    assert sharded.codec_stats == sequential.codec_stats

    cpu_count = os.cpu_count() or 1
    speedup = sequential_s / sharded_s if sharded_s > 0 else 0.0
    record = {
        "parameters": {
            "num_seeds": NUM_SEEDS,
            "jobs": JOBS,
            "fattree_k": SWEEP_CONFIG.fattree_k,
            "sessions": SWEEP_CONFIG.num_foreground_transfers,
            "object_kb": SWEEP_CONFIG.object_bytes // KILOBYTE,
            "carry_payload": True,
        },
        "cpu_count": cpu_count,
        "sequential_s": sequential_s,
        "sharded_s": sharded_s,
        "speedup": speedup,
        "results_identical": True,
        "merged_plan_cache": sharded.codec_stats["1 Replica RQ"]["plan_cache"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel_sweep.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    publish(
        "parallel_sweep",
        f"Sharded figure1a sweep ({NUM_SEEDS} seeds, jobs={JOBS}, {cpu_count} cores)\n"
        f"sequential: {sequential_s:.2f}s   sharded: {sharded_s:.2f}s   "
        f"speedup: {speedup:.2f}x   results identical: yes\n"
        + format_codec_stats(sharded.codec_stats),
    )

    # Pre-warmed encode plans mean encode never misses; any misses left are
    # decode-side (plans keyed by the exact lost-packet pattern, which cannot
    # be pre-computed), so they are bounded by the number of decoded blocks.
    stats = sharded.codec_stats["1 Replica RQ"]
    assert stats["plan_cache"]["misses"] <= stats["blocks_decoded"]
    assert stats["plan_cache"]["hits"] >= stats["blocks_encoded"]
    if cpu_count >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x wall-clock reduction on {cpu_count} cores, got {speedup:.2f}x"
        )
