"""Ablation benchmarks for the design choices argued in the paper's Section 2.

A1  packet trimming vs drop-tail (under Polyraptor, Incast workload)
A2  per-packet spraying vs per-flow ECMP vs single path (permutation traffic)
A3  RaptorQ receive overhead vs decode failure rate (real codec)
A4  initial-window size vs single-session goodput
"""

from __future__ import annotations

from benchmarks.conftest import publish
from repro.experiments.ablations import (
    initial_window_ablation,
    rq_overhead_ablation,
    spraying_ablation,
    trimming_ablation,
)
from repro.experiments.report import format_ablation, format_overhead
from repro.utils.units import KILOBYTE


def test_trimming_ablation(benchmark, config):
    points = benchmark.pedantic(
        lambda: trimming_ablation(config, num_senders=12, response_bytes=256 * KILOBYTE),
        rounds=1, iterations=1,
    )
    publish("ablation_trimming",
            format_ablation(points, "A1 -- Polyraptor Incast: trimming vs drop-tail switches"))
    by_label = {point.label: point for point in points}
    assert by_label["trimming"].trimmed_packets > 0
    assert by_label["trimming"].dropped_packets == 0
    assert by_label["droptail"].dropped_packets > 0
    # Trimming must be at least as good as dropping whole packets.
    assert by_label["trimming"].goodput_gbps >= 0.9 * by_label["droptail"].goodput_gbps


def test_spraying_ablation(benchmark, config):
    points = benchmark.pedantic(
        lambda: spraying_ablation(config), rounds=1, iterations=1
    )
    publish("ablation_spraying",
            format_ablation(points, "A2 -- permutation traffic: spraying vs ECMP vs single path"))
    by_label = {point.label: point for point in points}
    assert by_label["packet_spray"].goodput_gbps >= 0.9 * by_label["ecmp_flow"].goodput_gbps
    assert by_label["packet_spray"].goodput_gbps >= 0.9 * by_label["single_path"].goodput_gbps


def test_rq_overhead(benchmark):
    points = benchmark.pedantic(
        lambda: rq_overhead_ablation(num_source_symbols=32, symbol_size=64, trials=40),
        rounds=1, iterations=1,
    )
    publish("ablation_rq_overhead",
            format_overhead(points, "A3 -- RQ decode failure rate vs received overhead"))
    by_overhead = {point.overhead: point for point in points}
    # Footnote 2 of the paper: K + 2 symbols decode with overwhelming probability.
    assert by_overhead[2].failures == 0
    assert by_overhead[2].failure_rate <= by_overhead[0].failure_rate


def test_initial_window(benchmark, config):
    points = benchmark.pedantic(
        lambda: initial_window_ablation(config, window_sizes=(2, 6, 12, 18, 24)),
        rounds=1, iterations=1,
    )
    publish("ablation_initial_window",
            format_ablation(points, "A4 -- single-session goodput vs initial window (symbols)"))
    goodputs = [point.goodput_gbps for point in points]
    # Goodput grows with the window until it covers the bandwidth-delay product.
    assert goodputs[0] < goodputs[2] <= goodputs[-1] * 1.05
    assert goodputs[-1] > 0.8
