"""Benchmark for the correlated & gray failure experiment.

The resilience benchmark stresses *independent* faults; this one records the
realistic failure models -- shared-risk link groups, a rack power event,
gray loss routing never reacts to, and the same SRLG event under
control-plane convergence lag -- in ``BENCH_correlated.json`` so the
degradation trajectories stay comparable across commits.  The qualitative
claims (Polyraptor completes everything; gray loss hurts the per-flow-ECMP
TCP baseline far more than the sprayed fountain) are asserted before the
artifact is written.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from benchmarks.conftest import publish
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.correlated import run_correlated
from repro.experiments.report import format_correlated
from repro.utils.units import KILOBYTE

RESULTS_DIR = Path(__file__).parent / "results"

SRLG_SIZES = (1, 3)
GRAY_RATES = (0.01, 0.05)
CONVERGENCE_DELAYS = (0.0, 0.001)
JOBS = 2

SWEEP_CONFIG = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=16,
    object_bytes=96 * KILOBYTE,
    background_fraction=0.0,
    offered_load=0.15,
    max_sim_time_s=30.0,
)


def test_correlated_sweep(benchmark):
    start = time.perf_counter()
    sequential = run_correlated(
        SWEEP_CONFIG, srlg_sizes=SRLG_SIZES, gray_rates=GRAY_RATES,
        convergence_delays=CONVERGENCE_DELAYS, jobs=1,
    )
    sequential_s = time.perf_counter() - start
    sharded = benchmark.pedantic(
        lambda: run_correlated(
            SWEEP_CONFIG, srlg_sizes=SRLG_SIZES, gray_rates=GRAY_RATES,
            convergence_delays=CONVERGENCE_DELAYS, jobs=JOBS,
        ),
        rounds=1, iterations=1,
    )

    # Sharding must be invisible in every reported number.
    assert sharded.points == sequential.points
    assert sharded.codec_stats == sequential.codec_stats

    # The correlated models genuinely struck: compound events applied, gray
    # loss smeared without a single reroute, lag black-holed packets.
    for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
        rack = sharded.point(protocol, "rack").fault_stats
        assert rack["switches_failed"] == 1 and rack["links_failed"] > 0
        gray = sharded.point(protocol, f"gray-{GRAY_RATES[-1]:g}").fault_stats
        assert gray["packets_dropped_random_loss"] > 0
        assert gray["reroutes"] == 0
    lagged_label = f"delay-{CONVERGENCE_DELAYS[-1] * 1e3:g}ms"
    lagged = sharded.point(Protocol.POLYRAPTOR, lagged_label).fault_stats
    assert lagged["recomputes_requested"] == lagged["route_installs"] > 0

    # Qualitative story, asserted BEFORE the artifact is written: spraying +
    # fountain coding ride out every correlated model with bounded
    # degradation, while per-flow ECMP TCP suffers far worse under gray
    # loss (its unlucky flows sit on sick paths for their whole lifetime).
    worst_gray = f"gray-{GRAY_RATES[-1]:g}"
    for label in sharded.labels:
        assert sharded.point(Protocol.POLYRAPTOR, label).completion_fraction == 1.0
    rq_gray = sharded.point(Protocol.POLYRAPTOR, worst_gray).fct_vs_healthy
    tcp_gray = sharded.point(Protocol.TCP, worst_gray).fct_vs_healthy
    assert rq_gray is not None and rq_gray < 3.0
    assert tcp_gray is None or tcp_gray > rq_gray

    def finite_or_none(value):
        return value if value is not None and math.isfinite(value) else None

    record = {
        "parameters": {
            "fattree_k": SWEEP_CONFIG.fattree_k,
            "sessions": SWEEP_CONFIG.num_foreground_transfers,
            "object_kb": SWEEP_CONFIG.object_bytes // KILOBYTE,
            "srlg_sizes": list(SRLG_SIZES),
            "gray_rates": list(GRAY_RATES),
            "convergence_delays_s": list(CONVERGENCE_DELAYS),
            "jobs": JOBS,
        },
        "cpu_count": os.cpu_count() or 1,
        "sequential_s": sequential_s,
        "results_identical": True,
        "series": {
            f"{protocol.value}@{label}": {
                "completed": point.completed,
                "offered": point.offered,
                "median_fct_ms": finite_or_none(point.median_fct_ms),
                "p90_fct_ms": finite_or_none(point.p90_fct_ms),
                "mean_goodput_gbps": point.mean_goodput_gbps,
                "fct_vs_healthy": finite_or_none(point.fct_vs_healthy),
                "fault_stats": point.fault_stats,
            }
            for protocol in (Protocol.POLYRAPTOR, Protocol.TCP)
            for label, point in (
                (lbl, sharded.point(protocol, lbl)) for lbl in sharded.labels
            )
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_correlated.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    publish("extension_correlated", format_correlated(sharded))
