"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (or an ablation) at
a scaled-down configuration, prints the corresponding text table, and writes
it to ``benchmarks/results/`` so the artefacts survive pytest's output
capture.  Timing is collected with pytest-benchmark (single round: these are
minutes-scale simulations, not microbenchmarks).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.utils.units import KILOBYTE

RESULTS_DIR = Path(__file__).parent / "results"


def benchmark_config() -> ExperimentConfig:
    """The scaled-down configuration used by the figure benchmarks.

    Chosen so that a full ``pytest benchmarks/ --benchmark-only`` run finishes
    in a few minutes of wall time while still exhibiting every qualitative
    result of the paper's Figure 1 (see EXPERIMENTS.md for the mapping to the
    paper's full-scale parameters).
    """
    return ExperimentConfig(
        fattree_k=4,
        num_foreground_transfers=24,
        object_bytes=128 * KILOBYTE,
        background_fraction=0.2,
        offered_load=0.15,
        max_sim_time_s=30.0,
        seed=1,
    )


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """Session-scoped benchmark configuration."""
    return benchmark_config()
