"""Benchmark for the network-hotspot extension experiment.

The paper's discussion lists hotspot behaviour as work in progress; this
benchmark provides the experiment: measured permutation transfers share the
fabric with aggressors that keep one rack's uplinks persistently hot.
Per-packet spraying (Polyraptor) routes around the hot links; per-flow ECMP
(TCP) cannot.
"""

from __future__ import annotations

from benchmarks.conftest import publish
from repro.experiments.config import Protocol
from repro.experiments.hotspot import format_hotspot, run_hotspot_experiment


def test_hotspot_extension(benchmark, config):
    results = benchmark.pedantic(
        lambda: run_hotspot_experiment(config, num_measured=8, num_aggressors=6),
        rounds=1, iterations=1,
    )
    publish("extension_hotspot", format_hotspot(results))

    rq = results[Protocol.POLYRAPTOR]
    tcp = results[Protocol.TCP]
    assert rq.completion_fraction == 1.0
    assert rq.mean_goodput_gbps >= tcp.mean_goodput_gbps
    assert rq.p10_goodput_gbps >= tcp.p10_goodput_gbps
