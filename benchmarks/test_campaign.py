"""Benchmark: a 10,000-cell campaign through the persistent worker pool.

The figure benchmarks stress a handful of heavyweight cells; real parameter
studies look the opposite -- thousands of small cells where the executor's
fixed costs (spawn, serialisation, plan shipping, merge) decide whether
sharding pays at all.  This campaign expands ``REPRO_CAMPAIGN_CELLS``
(default 10,000) tiny identity-tracking runs over seeds x transfer kinds
(unicast, fetch) x fault regimes (healthy, SRLG cut, gray loss) and pushes
them through ``execute_jobs`` in one call, recording throughput and the
executor's per-phase profile in ``BENCH_campaign.json``.

Cells are deliberately milliseconds-scale: at this grain any per-cell
dispatch overhead shows up directly in cells/second, which is the number
this benchmark trends.  A deterministic sample of cells is re-run
sequentially and compared by canonical fingerprint, so the campaign also
re-checks the executor's determinism contract at scale.  CI runs the same
file with a small ``REPRO_CAMPAIGN_CELLS`` to keep the leg fast.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import publish
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.parallel import (
    RunJob,
    available_cpus,
    execute_jobs,
    last_profile,
    run_job,
    warm_worker_pool,
)
from repro.faults.schedule import gray_failure_schedule, shared_risk_group_schedule
from repro.network.topology import FatTreeTopology
from repro.sim.randomness import RandomStreams
from repro.utils.units import KILOBYTE
from repro.workloads.spec import TransferKind, TransferSpec

RESULTS_DIR = Path(__file__).parent / "results"

#: Cell count; CI overrides this down to keep the leg fast.
CELLS = int(os.environ.get("REPRO_CAMPAIGN_CELLS", "10000"))
BASE_SEED = 1
KINDS = (TransferKind.UNICAST, TransferKind.FETCH)
FAULTS = ("none", "srlg", "gray")

CAMPAIGN_CONFIG = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=1,
    object_bytes=8 * KILOBYTE,
    background_fraction=0.0,
    offered_load=0.15,
    max_sim_time_s=5.0,
    seed=BASE_SEED,
)


def _cell_job(index: int, topology: FatTreeTopology) -> RunJob:
    """The ``index``-th campaign cell, fully determined by its index."""
    seed = BASE_SEED + index
    kind = KINDS[index % len(KINDS)]
    fault = FAULTS[(index // len(KINDS)) % len(FAULTS)]
    config = CAMPAIGN_CONFIG.with_seed(seed)
    streams = RandomStreams(seed)
    rng = streams.stream("campaign.workload")
    hosts = list(topology.hosts)
    client = hosts[rng.randrange(len(hosts))]
    peers = [host for host in hosts if host != client]
    if kind is TransferKind.UNICAST:
        chosen = (peers[rng.randrange(len(peers))],)
    else:  # fetch pulls one object striped over two storage peers
        first = rng.randrange(len(peers))
        second = rng.randrange(len(peers) - 1)
        chosen = (peers[first], [p for p in peers if p != peers[first]][second])
    transfer = TransferSpec(
        transfer_id=0,
        kind=kind,
        client=client,
        peers=chosen,
        size_bytes=config.object_bytes,
        start_time=0.0,
        label="campaign",
    )
    fault_rng = streams.stream("campaign.faults")
    if fault == "srlg":
        schedule = shared_risk_group_schedule(
            topology, fault_rng, group_size=2, start_time=0.0, duration=0.01
        )
    elif fault == "gray":
        schedule = gray_failure_schedule(
            topology, fault_rng, loss_probability=0.01, start_time=0.0, duration=0.01
        )
    else:
        schedule = None
    return RunJob(
        key=(seed, kind.value, fault),
        protocol=Protocol.POLYRAPTOR,
        config=config,
        transfers=(transfer,),
        fault_schedule=schedule,
    )


def _fingerprint(run) -> str:
    return json.dumps(run.canonical_dict(), sort_keys=True, default=repr)


def test_campaign_throughput(benchmark):
    topology = FatTreeTopology(CAMPAIGN_CONFIG.fattree_k)
    build_start = time.perf_counter()
    jobs = [_cell_job(index, topology) for index in range(CELLS)]
    build_s = time.perf_counter() - build_start

    # Exercise the pooled path even on a single-core runner: the point is
    # executor overhead per cell, and a 1-worker "pool" would silently take
    # the sequential shortcut instead.
    workers = max(2, available_cpus())
    warm_start = time.perf_counter()
    warm_worker_pool(workers)
    pool_warm_s = time.perf_counter() - warm_start

    def _run():
        start = time.perf_counter()
        results = execute_jobs(jobs, num_workers=workers, label="campaign")
        return results, time.perf_counter() - start

    results, wall_s = benchmark.pedantic(_run, rounds=1, iterations=1)
    profile = last_profile()
    assert profile is not None and profile.jobs_total == CELLS
    cells_per_s = CELLS / wall_s if wall_s > 0 else 0.0

    # Determinism at scale: a deterministic sample of cells, re-run
    # sequentially in this process, must fingerprint identically.
    sample = sorted({0, CELLS // 3, (2 * CELLS) // 3, CELLS - 1})
    for index in sample:
        assert _fingerprint(run_job(jobs[index])) == _fingerprint(results[index]), (
            f"campaign cell {index} ({jobs[index].key}) diverged from "
            f"sequential execution"
        )

    completed = sum(
        1
        for run in results
        for record in run.registry.records
        if record.completed
    )
    record = {
        "parameters": {
            "cells": CELLS,
            "workers": workers,
            "fattree_k": CAMPAIGN_CONFIG.fattree_k,
            "object_kb": CAMPAIGN_CONFIG.object_bytes // KILOBYTE,
            "kinds": [kind.value for kind in KINDS],
            "faults": list(FAULTS),
        },
        "cpu_count": available_cpus(),
        "build_s": build_s,
        "pool_warm_s": pool_warm_s,
        "wall_s": wall_s,
        "cells_per_s": cells_per_s,
        "ms_per_cell": 1e3 * wall_s / CELLS if CELLS else 0.0,
        "completed_transfers": completed,
        "determinism_sample": {"indices": sample, "identical": True},
        "profile": profile.as_dict(),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_campaign.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    publish(
        "campaign",
        f"Campaign: {CELLS} cells ({len(KINDS)} kinds x {len(FAULTS)} fault "
        f"regimes), {workers} workers on {available_cpus()} usable cores "
        f"({profile.transport})\n"
        f"wall: {wall_s:.2f}s   throughput: {cells_per_s:.0f} cells/s   "
        f"per cell: {1e3 * wall_s / CELLS:.2f}ms   "
        f"build: {build_s:.2f}s   pool warm (untimed): {pool_warm_s:.2f}s\n"
        f"completed transfers: {completed}/{CELLS}   "
        f"determinism sample {sample}: identical",
    )

    # Every cell must finish its transfer -- a tiny object on an (at worst
    # briefly) degraded fabric always completes within the time limit.
    assert completed == CELLS
