#!/usr/bin/env python3
"""Replication study (the scenario behind Figure 1a).

A distributed-storage client stores objects on 1 or 3 replica servers chosen
outside its rack.  Polyraptor replicates via a single multicast session; the
TCP baseline must multi-unicast a full copy to every replica.  The example
runs a scaled-down version of the paper's workload (permutation clients,
Poisson arrivals, 20% background traffic) and prints the per-series goodput
summary plus the rank curve end points.

Run with:  python examples/replication_study.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.figure1a import run_figure1a, series_label
from repro.experiments.report import format_rank_figure
from repro.utils.units import KILOBYTE


def main() -> None:
    config = ExperimentConfig(
        fattree_k=4,
        num_foreground_transfers=20,
        object_bytes=128 * KILOBYTE,
        background_fraction=0.2,
        offered_load=0.15,
        max_sim_time_s=30.0,
    )
    print("Running the replication scenario (this takes a few seconds)...")
    result = run_figure1a(config, replica_counts=(1, 3))

    print()
    print(format_rank_figure(result, "Figure 1a (scaled down): storage replication"))
    print()

    for num_replicas in (1, 3):
        rq = result.summary(Protocol.POLYRAPTOR, num_replicas)
        tcp = result.summary(Protocol.TCP, num_replicas)
        print(f"  {num_replicas} replica(s): Polyraptor mean {rq.mean_gbps:.3f} Gbps "
              f"vs TCP mean {tcp.mean_gbps:.3f} Gbps "
              f"({rq.mean_gbps / tcp.mean_gbps:.1f}x)")

    rq_ratio = (result.summary(Protocol.POLYRAPTOR, 3).mean_gbps
                / result.summary(Protocol.POLYRAPTOR, 1).mean_gbps)
    tcp_ratio = (result.summary(Protocol.TCP, 3).mean_gbps
                 / result.summary(Protocol.TCP, 1).mean_gbps)
    print()
    print("  Going from 1 to 3 replicas costs:")
    print(f"    Polyraptor (multicast)     : goodput x{rq_ratio:.2f}")
    print(f"    TCP (multi-unicast)        : goodput x{tcp_ratio:.2f}")
    print()
    for num_replicas in (1, 3):
        for protocol in Protocol:
            run = result.runs[series_label(protocol, num_replicas)]
            print(f"  {series_label(protocol, num_replicas):<16} "
                  f"trimmed={run.trimmed_packets:<6} dropped={run.dropped_packets:<6} "
                  f"completion={run.completion_fraction:.2f}")


if __name__ == "__main__":
    main()
