#!/usr/bin/env python3
"""Incast demonstration (the scenario behind Figure 1c).

An aggregator requests data from N workers; every worker answers at the same
instant with a short response.  With TCP over drop-tail switches the receiver
link collapses (buffer overflow -> retransmission timeouts -> idle link); with
Polyraptor the combination of packet trimming, rateless symbols and receiver
pull pacing keeps the link busy no matter how many workers answer.

Run with:  python examples/incast_demo.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.figure1c import run_incast_point
from repro.utils.units import KILOBYTE


def main() -> None:
    config = ExperimentConfig(fattree_k=4, max_sim_time_s=30.0)
    sender_counts = (1, 2, 4, 8, 12)
    response_bytes = 256 * KILOBYTE

    print("Incast: synchronised short flows into one receiver (256 KB responses)")
    print()
    print(f"{'senders':>8}  {'Polyraptor Gbps':>16}  {'TCP Gbps':>10}  {'RQ / TCP':>9}")
    print(f"{'-' * 8}  {'-' * 16}  {'-' * 10}  {'-' * 9}")
    for count in sender_counts:
        rq = run_incast_point(Protocol.POLYRAPTOR, config, count, response_bytes, seed=1)
        tcp = run_incast_point(Protocol.TCP, config, count, response_bytes, seed=1)
        ratio = rq / tcp if tcp > 0 else float("inf")
        print(f"{count:>8}  {rq:>16.3f}  {tcp:>10.3f}  {ratio:>8.1f}x")

    print()
    print("TCP's goodput collapses as the sender count grows; Polyraptor stays")
    print("near the 1 Gbps receiver line rate (the paper's Figure 1c shape).")


if __name__ == "__main__":
    main()
