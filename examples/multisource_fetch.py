#!/usr/bin/env python3
"""Multi-source fetch study (the scenario behind Figure 1b).

A storage client fetches an object that is stored on several replica servers.
Polyraptor pulls statistically unique symbols from every replica at once --
each replica contributes at whatever rate its uplink allows (natural load
balancing, no coordination).  The example shows:

1. a single fetch session with per-sender contribution counts, including what
   happens when one replica is busy serving other traffic, and
2. the scaled-down Figure 1b comparison against the TCP emulation
   (uncoordinated 1/N shares).

Run with:  python examples/multisource_fetch.py
"""

from __future__ import annotations

from repro.core.agent import PolyraptorAgent
from repro.core.config import PolyraptorConfig
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.figure1b import run_figure1b
from repro.experiments.report import format_rank_figure
from repro.network.network import Network
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.transport.base import TransferRegistry
from repro.utils.units import KILOBYTE


def single_fetch_with_a_busy_replica() -> None:
    """Show per-sender load balancing when one replica has less spare capacity."""
    print("== One fetch, three replicas, one of them busy ==")
    sim = Simulator()
    topology = FatTreeTopology(4)
    network = Network(
        sim, topology, ExperimentConfig().network_config(Protocol.POLYRAPTOR), RandomStreams(3)
    )
    registry = TransferRegistry()
    agents = {
        host.name: PolyraptorAgent(sim, host, PolyraptorConfig(), registry)
        for host in network.hosts
    }

    replicas = ["h4", "h8", "h12"]
    # h4 is also pushing a large object elsewhere, so it has little spare uplink.
    agents["h4"].start_push_session(99, 800_000, [network.host_id("h9")], label="cross")
    agents["h0"].start_fetch_session(
        1, 800_000, [network.host_id(name) for name in replicas], label="fetch"
    )
    sim.run(until=5.0)

    record = registry.get(1)
    print(f"  fetch completed: {record.completed}, goodput {record.goodput_gbps:.3f} Gbps")
    for name in replicas:
        session = agents[name].sender_session(1)
        note = " (busy with another transfer)" if name == "h4" else ""
        print(f"    {name}: contributed {session.symbols_sent} symbols{note}")
    print()


def figure1b_comparison() -> None:
    """Scaled-down Figure 1b: rank-curve summary for 1 and 3 senders, RQ vs TCP."""
    print("== Figure 1b (scaled down): multi-source fetch ==")
    config = ExperimentConfig(
        fattree_k=4,
        num_foreground_transfers=20,
        object_bytes=128 * KILOBYTE,
        offered_load=0.15,
        max_sim_time_s=30.0,
    )
    result = run_figure1b(config, sender_counts=(1, 3))
    print(format_rank_figure(result, "goodput summary per series"))
    rq1 = result.summary(Protocol.POLYRAPTOR, 1).mean_gbps
    rq3 = result.summary(Protocol.POLYRAPTOR, 3).mean_gbps
    print()
    print(f"  Polyraptor with 3 senders vs 1 sender: x{rq3 / rq1:.2f} "
          "(fetching from more replicas never hurts)")


def main() -> None:
    single_fetch_with_a_busy_replica()
    figure1b_comparison()


if __name__ == "__main__":
    main()
