#!/usr/bin/env python3
"""Quickstart: ship real bytes over Polyraptor and decode them at the receiver.

This example runs the full stack in *payload mode*: the sender RaptorQ-encodes
an actual byte string, the symbols cross a simulated FatTree (trimming
switches, per-packet spraying), and the receiver decodes the object and checks
it matches.  It then runs the same transfer over the TCP baseline for
comparison.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro.core.agent import PolyraptorAgent
from repro.core.config import PolyraptorConfig
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.runner import run_unicast_demo
from repro.network.network import Network
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.transport.base import TransferRegistry
from repro.utils.units import format_rate


def polyraptor_payload_transfer(object_size: int = 200_000) -> None:
    """End-to-end transfer of real bytes, decoded and verified at the receiver."""
    print(f"== Polyraptor payload-mode transfer of {object_size} bytes ==")
    data = os.urandom(object_size)

    sim = Simulator()
    topology = FatTreeTopology(4)
    config = ExperimentConfig().network_config(Protocol.POLYRAPTOR)
    network = Network(sim, topology, config, RandomStreams(1))
    registry = TransferRegistry()
    protocol_config = PolyraptorConfig(
        carry_payload=True, symbol_size_bytes=512, max_symbols_per_block=64
    )
    agents = {
        host.name: PolyraptorAgent(sim, host, protocol_config, registry)
        for host in network.hosts
    }

    sender, receiver = "h0", "h15"
    agents[sender].start_push_session(
        1, len(data), [network.host_id(receiver)], label="quickstart", object_data=data
    )
    sim.run(until=5.0)

    record = registry.get(1)
    session = agents[receiver].receiver_session(1)
    print(f"  completed      : {record.completed}")
    print(f"  goodput        : {format_rate(record.goodput_bps)}")
    print(f"  symbols received: {session.symbols_received} "
          f"(trimmed headers seen: {session.trimmed_received})")
    print(f"  decoded bytes match original: {session.received_data == data}")
    print()


def compare_with_tcp(object_size: int = 1_000_000) -> None:
    """The same unicast transfer under Polyraptor and the TCP baseline."""
    print(f"== Unicast {object_size // 1000} kB transfer: Polyraptor vs TCP ==")
    for protocol in (Protocol.POLYRAPTOR, Protocol.TCP):
        result = run_unicast_demo(protocol, object_bytes=object_size)
        goodput = result.goodputs_gbps()[0]
        print(f"  {protocol.value:<12} goodput {goodput:.3f} Gbps "
              f"(events simulated: {result.events_processed})")
    print()


def main() -> None:
    polyraptor_payload_transfer()
    compare_with_tcp()


if __name__ == "__main__":
    main()
