#!/usr/bin/env python
"""Check that every relative markdown link in README/docs resolves.

Scans ``README.md`` and everything under ``docs/`` for ``[text](target)``
links with ``target``s of the form ``path`` or ``path#anchor``.  External
links (http/https/mailto) are skipped; relative targets must exist on disk,
and for in-repo markdown targets with an anchor the anchor must match a
heading in the target file (GitHub slug rules, simplified).

Exit status is non-zero when any link is broken, so CI can gate on it:

    python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, strip punctuation, dash per space."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors_of(markdown_file: Path) -> set[str]:
    return {_slugify(m.group(1)) for m in HEADING_RE.finditer(markdown_file.read_text(encoding="utf-8"))}


def _markdown_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("**/*.md"))
    return [f for f in files if f.is_file()]


def check_links() -> list[str]:
    """Return a list of human-readable problems (empty = all good)."""
    problems: list[str] = []
    for source in _markdown_files():
        text = source.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            rel = source.relative_to(REPO_ROOT)
            if not path_part:  # pure in-page anchor
                if anchor and _slugify(anchor) not in _anchors_of(source):
                    problems.append(f"{rel}: broken in-page anchor #{anchor}")
                continue
            resolved = (source.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{rel}: broken link {target}")
                continue
            if anchor and resolved.suffix == ".md":
                if _slugify(anchor) not in _anchors_of(resolved):
                    problems.append(f"{rel}: {path_part} exists but anchor #{anchor} not found")
    return problems


def main() -> int:
    problems = check_links()
    checked = len(_markdown_files())
    if problems:
        for problem in problems:
            print(f"BROKEN  {problem}")
        print(f"\n{len(problems)} broken link(s) across {checked} markdown files")
        return 1
    print(f"All relative links resolve across {checked} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
