#!/usr/bin/env python
"""Regenerate the sim/wire conformance trace corpus.

Writes ``tests/protocol/traces/*.json``.  Every value is a fixed literal
computed from protocol constants -- no randomness, no clocks -- so the
corpus is byte-stable: rerunning this script produces identical files
unless a trace definition here changes.

Usage::

    PYTHONPATH=src python scripts/regenerate_traces.py

Trace format (one session per file)::

    {
      "name":    "<trace name>",
      "kind":    "receiver" | "sender",
      "config":  { ...PolyraptorConfig overrides... },
      "session": { "session_id": ..., "object_bytes": ..., ... },
      "events":  [ {"t": <seconds>, "type": ..., ...}, ... ],
      "horizon": <seconds past the last event to keep running timers>,
      "expect_complete": true | false
    }

Event types: ``start`` / ``pull`` / ``done`` (sender sessions),
``start_fetch`` / ``symbol`` / ``done_ack`` (receiver sessions).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.rq.block import DEFAULT_SYMBOL_SIZE

TRACES_DIR = Path(__file__).resolve().parent.parent / "tests" / "protocol" / "traces"

#: Every trace uses a 12-source-symbol single-block object.
K = 12
OBJECT_BYTES = K * DEFAULT_SYMBOL_SIZE

SESSION = 7
RECEIVER_SENDERS = [11, 12]
SENDER_RECEIVERS = [21, 22]


def _symbol(t, sender, esi, sequence, **extra):
    event = {
        "t": t,
        "type": "symbol",
        "sender_host": sender,
        "block_number": 0,
        "esi": esi,
        "block_symbol_count": K,
        "num_blocks": 1,
        "sequence": sequence,
    }
    event.update(extra)
    return event


def receiver_clean() -> dict:
    """Two-sender fetch, no loss: request, stream in, DONE, both acks."""
    events = [{"t": 0.0, "type": "start_fetch"}]
    # Sender 11 serves even ESIs, sender 12 odd ones, strictly alternating;
    # each sender stamps its own unicast sequence stream.
    sequences = {11: 0, 12: 0}
    for i in range(K):
        sender = RECEIVER_SENDERS[i % 2]
        sequences[sender] += 1
        events.append(
            _symbol(0.0002 + i * 2e-05, sender, i, sequences[sender])
        )
    finish = events[-1]["t"]
    events.append({"t": finish + 1e-04, "type": "done_ack", "sender_host": 11})
    events.append({"t": finish + 1.2e-04, "type": "done_ack", "sender_host": 12})
    return {
        "name": "receiver_clean",
        "kind": "receiver",
        "config": {},
        "session": {
            "session_id": SESSION,
            "object_bytes": OBJECT_BYTES,
            "expected_senders": RECEIVER_SENDERS,
        },
        "events": events,
        "horizon": 0.01,
        "expect_complete": True,
    }


def receiver_stall() -> dict:
    """One sender, trims + CE + sequence gaps, a stall-length quiet period,
    and a DONE ack that only lands after the first retransmission."""
    sender = 11
    events = [{"t": 0.0, "type": "start_fetch"}]
    t, seq = 0.0002, 0
    # Source symbols 0..7, with two trimmed arrivals, a CE mark and a
    # sequence gap (the estimator sees one symbol vanish) along the way.
    for esi in range(8):
        seq += 1
        extra = {}
        if esi == 2:
            extra["ce"] = True
        if esi == 5:
            seq += 1  # a symbol was lost on the path: the stream gaps
        events.append(_symbol(t, sender, esi, seq, **extra))
        t += 2e-05
        if esi in (3, 6):
            seq += 1
            events.append(_symbol(t, sender, 0, seq, trimmed=True))
            t += 2e-05
    # Quiet period longer than two stall timeouts (2 x 500us): the stall
    # timer fires twice and re-issues pulls both times.
    t += 1.2e-03
    # ESIs 8..10 plus three repair symbols: 11 source + 3 repair = K + 2
    # distinct symbols, enough to declare the block decodable.
    for esi in (8, 9, 10, 12, 13, 14):
        seq += 1
        events.append(_symbol(t, sender, esi, seq))
        t += 2e-05
    finish = events[-1]["t"]
    # No ack until after the first DONE retransmission (stall_timeout later).
    events.append({"t": finish + 7e-04, "type": "done_ack", "sender_host": sender})
    return {
        "name": "receiver_stall",
        "kind": "receiver",
        "config": {},
        "session": {
            "session_id": SESSION,
            "object_bytes": OBJECT_BYTES,
            "expected_senders": [sender],
        },
        "events": events,
        "horizon": finish + 4e-03,
        "expect_complete": True,
    }


def receiver_wire_profile() -> dict:
    """TFRC pacing + gap-triggered pulls (the real-network receiver profile):
    RTT samples from sent_at stamps, CE-driven congestion echoes, and two
    sequence gaps that each replace a lost symbol's pull."""
    sender = 11
    events = [{"t": 0.0, "type": "start_fetch"}]
    t, seq = 0.0002, 0
    esis = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 14, 15]  # 10 source + 4 repair
    for i, esi in enumerate(esis):
        seq += 1
        extra = {"sent_at": t - 5e-05}
        if i == 4:
            extra["ce"] = True
        if i in (3, 9):
            seq += 1  # lost datagram: no trim arrives, only the gap shows
        events.append(_symbol(t, sender, esi, seq, **extra))
        t += 2e-05
    return {
        "name": "receiver_wire_profile",
        "kind": "receiver",
        "config": {"tfrc_pacing": True, "pull_on_gap": True},
        "session": {
            "session_id": SESSION,
            "object_bytes": OBJECT_BYTES,
            "expected_senders": [sender],
        },
        "events": events,
        "horizon": 0.01,
        "expect_complete": True,
    }


def sender_unicast() -> dict:
    """Pull-clocked unicast push: initial window, six pulls, DONE."""
    receiver = SENDER_RECEIVERS[0]
    events = [{"t": 0.0, "type": "start"}]
    for i in range(6):
        events.append({
            "t": 0.0003 + i * 2e-05,
            "type": "pull",
            "receiver_host": receiver,
            "pull_sequence": i + 1,
            "block_hint": 0 if i >= 3 else None,
            "congestion_echo": 1 if i == 2 else 0,
            "loss_estimate": 0.0,
        })
    events.append({"t": 0.001, "type": "done", "receiver_host": receiver})
    return {
        "name": "sender_unicast",
        "kind": "sender",
        "config": {},
        "session": {
            "session_id": SESSION,
            "object_bytes": OBJECT_BYTES,
            "receiver_host_ids": [receiver],
        },
        "events": events,
        "horizon": 0.002,
        "expect_complete": True,
    }


def sender_startup() -> dict:
    """A receiver that stays dark through two startup probes, then pulls."""
    receiver = SENDER_RECEIVERS[0]
    events = [{"t": 0.0, "type": "start"}]
    # Silence until 1.7ms: startup probes fire at 0.5ms and 1.5ms.
    for i in range(3):
        events.append({
            "t": 0.0017 + i * 2e-05,
            "type": "pull",
            "receiver_host": receiver,
            "pull_sequence": i + 1,
            "block_hint": None,
            "congestion_echo": 0,
            "loss_estimate": 0.02,
        })
    events.append({"t": 0.0025, "type": "done", "receiver_host": receiver})
    return {
        "name": "sender_startup",
        "kind": "sender",
        "config": {},
        "session": {
            "session_id": SESSION,
            "object_bytes": OBJECT_BYTES,
            "receiver_host_ids": [receiver],
        },
        "events": events,
        "horizon": 0.004,
        "expect_complete": True,
    }


def sender_multicast() -> dict:
    """Two-receiver multicast push: pull aggregation rounds, then both DONE."""
    r1, r2 = SENDER_RECEIVERS
    events = [{"t": 0.0, "type": "start"}]
    t = 0.0003
    for round_number in range(4):
        for receiver in (r1, r2):
            events.append({
                "t": t,
                "type": "pull",
                "receiver_host": receiver,
                "pull_sequence": round_number + 1,
                "block_hint": None,
                "congestion_echo": 0,
                "loss_estimate": 0.0,
            })
            t += 1e-05
        t += 3e-05
    events.append({"t": 0.001, "type": "done", "receiver_host": r1})
    events.append({"t": 0.0012, "type": "done", "receiver_host": r2})
    return {
        "name": "sender_multicast",
        "kind": "sender",
        "config": {},
        "session": {
            "session_id": SESSION,
            "object_bytes": OBJECT_BYTES,
            "receiver_host_ids": [r1, r2],
            "multicast_group": 100,
        },
        "events": events,
        "horizon": 0.002,
        "expect_complete": True,
    }


TRACES = (
    receiver_clean,
    receiver_stall,
    receiver_wire_profile,
    sender_unicast,
    sender_startup,
    sender_multicast,
)


def main() -> None:
    TRACES_DIR.mkdir(parents=True, exist_ok=True)
    for build in TRACES:
        trace = build()
        path = TRACES_DIR / f"{trace['name']}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path} ({len(trace['events'])} events)")


if __name__ == "__main__":
    main()
